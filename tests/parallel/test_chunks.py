"""Chunked DLEQ verification and RS stripe encoding: verdicts and
fragments are identical to the sequential engine at every ``jobs``."""

import random

import pytest

from repro.codes.reed_solomon import ReedSolomon
from repro.crypto.dleq import prove_dleq, verify_dleq_batch
from repro.crypto.group import TEST_GROUP_256
from repro.parallel import encode_blocks_striped, verify_dleq_batch_chunked


def _statements(n, *, forge=()):
    group = TEST_GROUP_256
    rng = random.Random(0)
    g1 = group.generator
    g2 = group.power(group.generator, 7)
    statements = []
    for i in range(n):
        x = rng.randrange(1, group.order)
        y1, y2, proof = prove_dleq(group, x, g1, g2, rng)
        if i in forge:
            y1 = (y1 * g1) % group.p
        statements.append((y1, y2, proof))
    return group, g1, g2, statements


class TestDleqChunked:
    def test_matches_unchunked_verdicts(self):
        group, g1, g2, statements = _statements(20, forge=(3, 17))
        reference = verify_dleq_batch(group, g1, g2, statements, rng=random.Random(1))
        chunked = verify_dleq_batch_chunked(
            group, g1, g2, statements, jobs=1, chunk_size=6, seed=9
        )
        assert chunked == reference
        assert chunked[3] is False and chunked[17] is False
        assert sum(chunked) == 18

    def test_chunk_size_does_not_change_verdicts(self):
        group, g1, g2, statements = _statements(15, forge=(0,))
        verdicts = [
            verify_dleq_batch_chunked(
                group, g1, g2, statements, chunk_size=size, seed=4
            )
            for size in (1, 4, 64)
        ]
        assert verdicts[0] == verdicts[1] == verdicts[2]

    def test_rejects_bad_chunk_size(self):
        group, g1, g2, statements = _statements(2)
        with pytest.raises(ValueError):
            verify_dleq_batch_chunked(group, g1, g2, statements, chunk_size=0)

    @pytest.mark.proc
    def test_jobs_do_not_change_verdicts(self):
        group, g1, g2, statements = _statements(20, forge=(7,))
        sequential = verify_dleq_batch_chunked(
            group, g1, g2, statements, jobs=1, chunk_size=5, seed=2
        )
        parallel = verify_dleq_batch_chunked(
            group, g1, g2, statements, jobs=2, chunk_size=5, seed=2
        )
        assert sequential == parallel
        assert parallel[7] is False


class TestRsStriped:
    def test_matches_per_stripe_encoding(self):
        rs = ReedSolomon(4, 8)
        stripes = [random.Random(i).randbytes(256) for i in range(6)]
        reference = [rs.encode_blocks(s, systematic=True) for s in stripes]
        assert (
            encode_blocks_striped(4, 8, stripes, jobs=1, systematic=True, rs=rs)
            == reference
        )
        assert (
            encode_blocks_striped(4, 8, stripes, jobs=1, systematic=True)
            == reference
        )

    @pytest.mark.proc
    def test_jobs_do_not_change_fragments(self):
        rs = ReedSolomon(5, 12)
        stripes = [random.Random(100 + i).randbytes(320) for i in range(8)]
        reference = [rs.encode_blocks(s) for s in stripes]
        assert encode_blocks_striped(5, 12, stripes, jobs=3) == reference
