"""The deterministic executor: parse_jobs validation, in-order merge,
and the guarantee that ``jobs`` never changes a result.

The ``jobs=1`` paths are tier-1 (no processes spawned); anything that
actually forks is ``proc``-marked so tier-1 stays single-process.
"""

import pytest

from repro.parallel import ParallelExecutor, available_parallelism, parse_jobs


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"planted failure on {x}")


class TestParseJobs:
    def test_accepts_positive_ints_and_strings(self):
        assert parse_jobs(1) == 1
        assert parse_jobs(8) == 8
        assert parse_jobs("4") == 4
        assert parse_jobs(" 2 ") == 2
        assert parse_jobs(None) == 1

    def test_auto_means_the_cpu_count(self):
        assert parse_jobs("auto") == available_parallelism()
        assert parse_jobs("AUTO") == available_parallelism()
        assert parse_jobs("auto") >= 1

    @pytest.mark.parametrize("bad", [0, -1, "0", "-3", "nope", "1.5", "", True])
    def test_rejects_everything_else(self, bad):
        with pytest.raises(ValueError):
            parse_jobs(bad)

    def test_executor_constructor_validates(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)


class TestSequentialPath:
    def test_map_preserves_order(self):
        assert ParallelExecutor(1).map(_square, range(10)) == [
            x * x for x in range(10)
        ]

    def test_progress_fires_in_index_order(self):
        seen = []
        ParallelExecutor(1).map(_square, range(5), progress=lambda i, r: seen.append((i, r)))
        assert seen == [(i, i * i) for i in range(5)]

    def test_single_item_never_forks(self):
        # jobs > 1 with one item takes the sequential path (workers are
        # capped at len(items)).
        assert ParallelExecutor(8).map(_square, [3]) == [9]

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError, match="planted"):
            ParallelExecutor(1).map(_boom, [1])


@pytest.mark.proc
class TestParallelPath:
    def test_matches_sequential_exactly(self):
        items = list(range(23))
        assert ParallelExecutor(3).map(_square, items) == [x * x for x in items]

    def test_progress_fires_in_index_order(self):
        seen = []
        ParallelExecutor(2).map(_square, range(8), progress=lambda i, r: seen.append(i))
        assert seen == list(range(8))

    def test_worker_exceptions_propagate(self):
        with pytest.raises(RuntimeError, match="planted"):
            ParallelExecutor(2).map(_boom, range(4))
