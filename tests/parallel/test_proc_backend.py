"""The process-per-party ``proc`` backend.

The acceptance bars pinned here:

* cross-backend equivalence: the pinned ``uniform-rbc`` and
  ``crash-f-rbc`` scenarios produce the same unified record fields on
  ``sim``, ``inproc``, and ``proc`` (decided values, completion, message
  counts; byte counts additionally match ``inproc``, which meters the
  same codec);
* a 16-party proc cluster completes the pinned SMR scenario with one
  distinct OS process per party (distinct PIDs in the run record);
* concurrent proc clusters cannot collide on ports (kernel-assigned,
  published over the control pipe);
* worker crash and timeout surface as catchable errors, not hangs.

Everything that spawns processes is ``proc``-marked; the guard tests at
the bottom are tier-1 (no processes).
"""

import json
import threading

import pytest

from repro.parallel.proc import CRASH_ENV, ProcError
from repro.runtime.cluster import Cluster
from repro.scenarios.harness import run_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec, WeightSpec, WorkloadSpec


def _small_spec(name, seed=0, n=4):
    return ScenarioSpec(
        name=name,
        protocol="rbc",
        weights=WeightSpec(kind="constant", n=n, total=n * 100),
        seed=seed,
        workload=WorkloadSpec(payload_size=16),
    )


@pytest.mark.proc
class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("name", ["uniform-rbc", "crash-f-rbc"])
    def test_pinned_scenarios_match_sim_and_inproc(self, name):
        spec = get_scenario(name)
        sim = run_scenario(spec, backend="sim")
        inproc = run_scenario(spec, backend="inproc", timeout=30)
        proc = run_scenario(spec, backend="proc", timeout=60)
        assert proc.completed and sim.completed and inproc.completed
        assert proc.decided == sim.decided == inproc.decided
        assert proc.messages == sim.messages == inproc.messages
        assert dict(proc.by_type) == dict(sim.by_type) == dict(inproc.by_type)
        assert proc.dropped_messages == sim.dropped_messages
        # Byte metering is the runtime codec's; the sim estimates, so the
        # byte bar is proc == inproc.
        assert proc.bytes == inproc.bytes
        assert dict(proc.bytes_by_type) == dict(inproc.bytes_by_type)

    def test_record_shape_carries_workers(self):
        record = run_scenario(
            get_scenario("uniform-rbc"), backend="proc", timeout=60
        ).record()
        assert record["backend"] == "proc"
        assert set(record["workers"]) == {str(n) for n in range(8)}
        json.dumps(record)  # record stays JSON-able


@pytest.mark.proc
class TestProcessPerParty:
    def test_sixteen_party_smr_runs_sixteen_processes(self):
        import os

        spec = ScenarioSpec(
            name="smr-16-proc",
            protocol="smr",
            weights=WeightSpec(kind="constant", n=16, total=1600),
            workload=WorkloadSpec(payload_size=16, epochs=1),
        )
        result = run_scenario(spec, backend="proc", timeout=120)
        assert result.completed
        pids = list(result.workers.values())
        assert len(pids) == 16
        assert len(set(pids)) == 16  # one distinct OS process per party
        assert os.getpid() not in pids  # none of them is the parent

    def test_concurrent_clusters_do_not_collide(self):
        # Two proc clusters at once: every port is kernel-assigned and
        # published through the control pipe, so both must complete.
        results = {}
        errors = []

        def run(key, seed):
            try:
                results[key] = run_scenario(
                    _small_spec(f"cc-{key}", seed=seed), backend="proc", timeout=60
                )
            except Exception as exc:  # noqa: BLE001 -- surfaced below
                errors.append((key, exc))

        threads = [
            threading.Thread(target=run, args=(key, seed))
            for key, seed in (("a", 0), ("b", 1))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        assert results["a"].completed and results["b"].completed
        assert not (
            set(results["a"].workers.values()) & set(results["b"].workers.values())
        )


@pytest.mark.proc
class TestFailureSurfaces:
    def test_worker_crash_raises_proc_error(self, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "1")
        with pytest.raises(ProcError, match="worker 1"):
            run_scenario(_small_spec("crash-surface"), backend="proc", timeout=30)

    def test_proc_error_is_a_runtime_error(self):
        # The CLI's uniform {"error": ...} handler catches RuntimeError.
        assert issubclass(ProcError, RuntimeError)

    def test_timeout_raises_timeout_error(self):
        with pytest.raises(TimeoutError):
            run_scenario(_small_spec("timeout-surface"), backend="proc", timeout=0.001)


class TestGuards:
    """Tier-1 (no processes): misuse is rejected eagerly."""

    def test_vaba_is_rejected(self):
        spec = ScenarioSpec(
            name="vaba-proc",
            protocol="vaba",
            weights=WeightSpec(kind="constant", n=4, total=400),
        )
        with pytest.raises(ValueError, match="not supported on the proc"):
            run_scenario(spec, backend="proc")

    def test_service_workloads_are_rejected(self):
        spec = ScenarioSpec(
            name="svc-proc",
            protocol="smr",
            weights=WeightSpec(kind="constant", n=4, total=400),
            workload=WorkloadSpec(kind="service"),
        )
        with pytest.raises(ValueError, match="not proc"):
            run_scenario(spec, backend="proc")

    def test_single_loop_cluster_rejects_the_proc_transport(self):
        with pytest.raises(ValueError, match="process-per-party"):
            Cluster(lambda pid: None, 4, transport="proc")

    def test_backend_spec_accepts_proc(self):
        from repro.api import BackendSpec

        assert BackendSpec(name="proc").name == "proc"
