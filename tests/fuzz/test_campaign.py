"""The fuzz campaign: seeded sampling, invariant checking on every
record, one-line replay specs, and the mutation smoke test.

Three bars are pinned here:

* a healthy campaign over committees x strategies x protocols finds
  nothing (the big one is ``slow``-marked; tier-1 runs a miniature);
* every episode is a pure function of ``(seed, index)`` and a persisted
  replay spec re-runs it byte-identically on the sim backend;
* the campaign is *able* to find bugs: deliberately weakening the RBC
  quorum thresholds makes it report violations whose replay specs
  reproduce the failure deterministically -- a campaign that cannot
  catch a planted bug is just an expensive random number generator.
"""

import json

import pytest

from repro.adversary import (
    CampaignResult,
    FuzzConfig,
    build_episode,
    replay_episode,
    run_campaign,
    run_episode,
)
from repro.adversary.fuzz import (
    PROBE_KINDS,
    run_coin_probe,
    run_dleq_probe,
    run_rs_probe,
)
from repro.weighted.quorum import WeightedQuorums

#: the verified mutation-catching recipe: equivocate-rbc violates
#: agreement on a minority of seeds under the weakened thresholds, so the
#: smoke campaign focuses every episode on that strategy
MUTATION_CONFIG = FuzzConfig(
    episodes=40,
    seed=3,
    protocols=("rbc",),
    strategies=("equivocate",),
    include_probes=False,
    include_service=False,
)


class TestSampling:
    def test_episodes_are_pure_functions_of_seed_and_index(self):
        config = FuzzConfig(episodes=0, seed=42)
        for index in range(30):
            assert build_episode(config, index) == build_episode(config, index)

    def test_distinct_indices_sample_distinct_episodes(self):
        config = FuzzConfig(episodes=0, seed=42)
        episodes = [json.dumps(build_episode(config, i), sort_keys=True)
                    for i in range(30)]
        assert len(set(episodes)) == len(episodes)

    def test_episode_is_one_json_line(self):
        config = FuzzConfig(episodes=0, seed=7)
        for index in range(10):
            line = json.dumps(build_episode(config, index), sort_keys=True)
            assert "\n" not in line
            assert json.loads(line) == build_episode(config, index)

    def test_sampler_covers_the_space(self):
        config = FuzzConfig(episodes=0, seed=0)
        episodes = [build_episode(config, i) for i in range(120)]
        kinds = {e["kind"] for e in episodes}
        assert set(PROBE_KINDS) <= kinds
        assert {"scenario", "service", "chaos"} <= kinds
        strategies = {e.get("strategy") for e in episodes if "strategy" in e}
        assert {"equivocate", "garble-echo", "pivot-delay",
                "adaptive-corrupt", "share-flood", None} <= strategies

    def test_probe_flag_gates_probes(self):
        config = FuzzConfig(episodes=0, seed=0, include_probes=False,
                            include_service=False, include_chaos=False)
        kinds = {build_episode(config, i)["kind"] for i in range(40)}
        assert kinds == {"scenario"}

    def test_chaos_episodes_sample_staged_plans(self):
        config = FuzzConfig(episodes=0, seed=0)
        chaos = [build_episode(config, i) for i in range(120)
                 if build_episode(config, i)["kind"] == "chaos"]
        assert chaos
        for episode in chaos:
            plan = episode["scenario"]["chaos"]
            actions = [s["action"] for s in plan["stages"]]
            # every sampled timeline heals its partition (liveness kept)
            assert actions[:2] == ["partition", "heal"]
            weather = plan.get("weather")
            if weather is not None:
                assert weather.get("loss", 0.0) == 0.0


class TestProbes:
    @pytest.mark.parametrize("seed", range(4))
    def test_dleq_forge_probe_is_clean(self, seed):
        violations, record = run_dleq_probe(seed)
        assert violations == []
        assert record["bad"]  # every draw plants at least one forgery

    @pytest.mark.parametrize("seed", range(4))
    def test_rs_error_flood_probe_is_clean(self, seed):
        violations, record = run_rs_probe(seed)
        assert violations == []
        assert record["ok"]

    @pytest.mark.parametrize("seed", range(4))
    def test_coin_unpredictability_probe_is_clean(self, seed):
        violations, record = run_coin_probe(seed)
        assert violations == []
        assert record["threshold"] <= record["total_shares"]


class TestCampaign:
    def test_miniature_campaign_is_clean(self):
        config = FuzzConfig(episodes=40, seed=1)
        result = run_campaign(config)
        assert result.ok, result.failures
        assert result.checked + result.skipped == 40
        assert result.checked > result.skipped
        summary = result.summary()
        assert summary["violations"] == 0
        assert summary["seed"] == 1

    def test_replay_spec_reproduces_the_record_byte_identically(self):
        config = FuzzConfig(episodes=0, seed=9)
        index = next(
            i for i in range(50)
            if build_episode(config, i)["kind"] == "scenario"
        )
        episode = build_episode(config, index)
        first = run_episode(episode)
        assert not first.skipped
        again = replay_episode(first.replay_spec)
        assert json.dumps(first.record, sort_keys=True) == json.dumps(
            again.record, sort_keys=True
        )

    def test_failures_write_as_one_line_replay_specs(self, tmp_path):
        config = FuzzConfig(episodes=2, seed=1)
        result = run_campaign(config)
        # Synthesize a failure so the persistence path is exercised even
        # on a (correct) clean codebase.
        result.outcomes[0].violations.append("synthetic: planted for test")
        path = tmp_path / "failures.jsonl"
        assert result.write_failures(path) == 1
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        spec = json.loads(lines[0])
        assert spec["violations"] == ["synthetic: planted for test"]
        assert spec["seed"] == 1

    @pytest.mark.slow
    def test_two_hundred_episode_campaign_is_clean(self):
        # The acceptance campaign: every record invariant-checked, full
        # kind coverage, zero violations.
        result = run_campaign(FuzzConfig(episodes=200, seed=0))
        assert result.ok, result.failures
        assert result.checked >= 150
        kinds = set(result.by_kind())
        assert any(k.startswith("dleq") for k in kinds)
        assert any(k.startswith("service") for k in kinds)

    @pytest.mark.slow
    def test_campaign_runs_on_the_inproc_backend(self):
        result = run_campaign(
            FuzzConfig(
                episodes=12,
                seed=2,
                backend="inproc",
                include_probes=False,
                include_service=False,
                strategies=(None, "garble-echo", "adaptive-corrupt"),
            )
        )
        assert result.ok, result.failures
        assert result.checked > 0


class TestMutationSmoke:
    """Weaken the RBC quorum thresholds and the campaign must notice.

    Delivery in Bracha RBC gates on a *deliver* quorum of READY messages,
    and readies only form once an *echo* quorum crosses ``(1 - f_w) W``;
    dropping both gates to the f_w ("ready") threshold lets an
    equivocating sender drive disjoint weight-halves to deliver
    conflicting payloads -- the agreement violation the invariants exist
    to catch.
    """

    def _weaken(self, monkeypatch):
        monkeypatch.setattr(
            WeightedQuorums,
            "echo_quorum",
            lambda self, senders: self._over(senders, "ready"),
        )
        monkeypatch.setattr(
            WeightedQuorums,
            "deliver_quorum",
            lambda self, senders: self._over(senders, "ready"),
        )

    def test_weakened_quorums_are_caught_and_replay_deterministically(
        self, monkeypatch
    ):
        self._weaken(monkeypatch)
        result = run_campaign(MUTATION_CONFIG)
        assert result.failures, (
            "campaign missed the planted quorum-threshold mutation"
        )
        assert any(
            any(v.startswith("agreement") for v in o.violations)
            for o in result.outcomes
        )
        # Replay the first failure, still under the mutation: same
        # verdicts, byte-identical record.
        first = next(o for o in result.outcomes if o.violations)
        again = replay_episode(first.replay_spec)
        assert again.violations == first.violations
        assert json.dumps(first.record, sort_keys=True) == json.dumps(
            again.record, sort_keys=True
        )

    def test_healthy_thresholds_pass_the_same_campaign(self):
        result = run_campaign(MUTATION_CONFIG)
        assert result.ok, result.failures
        assert result.checked > 0

    def test_campaign_result_aggregates(self):
        outcome_ok = run_episode(build_episode(MUTATION_CONFIG, 0))
        result = CampaignResult(config=MUTATION_CONFIG, outcomes=[outcome_ok])
        assert result.checked + result.skipped == 1
        assert result.by_kind()
