"""Determinism regression: same spec + same seed => byte-identical record.

The sim backend's metrics record is a pure function of the spec (virtual
time, event counts, message counters, decided digests).  This is the
property that makes scenario records usable as regression artifacts --
any diff in the canonical JSON is a real behavioral change.
"""

import pytest

from repro.scenarios import SCENARIOS, get_scenario, run_scenario, scenario_names


@pytest.mark.parametrize("name", scenario_names())
def test_sim_record_byte_identical_across_runs(name):
    spec = get_scenario(name)
    first = run_scenario(spec, backend="sim").record_json()
    second = run_scenario(spec, backend="sim").record_json()
    assert first == second, name


def test_different_seed_changes_the_record():
    # Sanity check that the record actually depends on the seed (payload
    # digests shift even when message counts stay put).
    spec = get_scenario("uniform-rbc")
    base = run_scenario(spec, backend="sim").record_json()
    reseeded = run_scenario(spec.with_seed(99), backend="sim").record_json()
    assert base != reseeded


def test_record_fields_are_json_stable():
    result = run_scenario(get_scenario("zipf-stake-smr"), backend="sim")
    record = result.record()
    assert record["backend"] == "sim"
    assert "wall_seconds" not in record  # nondeterministic fields excluded
    assert isinstance(record["sim_time"], float)
    assert record["messages"] == sum(record["by_type"].values())
    assert record["bytes"] == sum(record["bytes_by_type"].values())
