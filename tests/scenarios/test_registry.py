"""The scenario registry and its acceptance bar.

Every built-in scenario must complete on the sim backend; the
cross-backend subset must also pass on the live in-process runtime with
decided values agreeing with the sim (and message counts agreeing where
the protocol driver marks them comparable).
"""

import pytest

from repro.scenarios import (
    INPROC_SCENARIOS,
    SCENARIOS,
    ScenarioSpec,
    get_scenario,
    run_scenario,
    scenario_names,
)


class TestRegistryShape:
    def test_at_least_eight_scenarios(self):
        assert len(SCENARIOS) >= 8

    def test_names_unique_and_described(self):
        names = scenario_names()
        assert len(names) == len(set(names))
        assert all(SCENARIOS[n].description for n in names)

    def test_covers_required_regimes(self):
        kinds = {spec.weights.kind for spec in SCENARIOS.values()}
        assert {"constant", "zipf", "chain", "explicit"} <= kinds
        protocols = {spec.protocol for spec in SCENARIOS.values()}
        assert {"rbc", "smr", "vaba", "checkpoint"} <= protocols
        assert any(spec.faults.crashes for spec in SCENARIOS.values())
        assert any(spec.faults.partition for spec in SCENARIOS.values())
        assert any(spec.faults.link_delays for spec in SCENARIOS.values())

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_scenario("no-such-scenario")

    def test_spec_round_trips_through_dict(self):
        for spec in SCENARIOS.values():
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_out_of_range_fault_pids_rejected(self):
        from repro.scenarios import FaultSpec, WeightSpec

        spec = ScenarioSpec(
            name="bad-crash-pid",
            protocol="rbc",
            weights=WeightSpec(kind="explicit", values=(5, 5, 5, 5)),
            faults=FaultSpec(crashes=(9,)),
        )
        with pytest.raises(ValueError, match="out of range"):
            run_scenario(spec, backend="sim")

    def test_crashing_every_party_rejected(self):
        from repro.scenarios import FaultSpec, WeightSpec

        spec = ScenarioSpec(
            name="all-dead",
            protocol="rbc",
            weights=WeightSpec(kind="explicit", values=(5, 5)),
            faults=FaultSpec(crashes=(0, 1)),
        )
        with pytest.raises(ValueError, match="crashes every party"):
            run_scenario(spec, backend="sim")

    def test_never_healing_smr_partition_rejected(self):
        # A vacuously-true completion predicate must not masquerade as a
        # successful run: SMR under a permanent partition has no epoch
        # that can commit everywhere, so the spec is rejected up front.
        from repro.scenarios import FaultSpec, WeightSpec

        spec = ScenarioSpec(
            name="split-forever",
            protocol="smr",
            weights=WeightSpec(kind="explicit", values=(10, 10, 10, 10)),
            faults=FaultSpec(partition=((0, 1), (2, 3))),
        )
        with pytest.raises(ValueError, match="heal_at"):
            run_scenario(spec, backend="sim")


class TestSimBackend:
    @pytest.mark.parametrize("name", scenario_names())
    def test_scenario_completes_on_sim(self, name):
        result = run_scenario(get_scenario(name), backend="sim")
        assert result.completed, name
        assert result.messages > 0
        # agreement: every live party decided the same value(s)
        assert len(set(result.decided.values())) == 1, name

    def test_fault_counters_fire(self):
        crash = run_scenario(get_scenario("crash-f-rbc"), backend="sim")
        assert crash.dropped_messages > 0
        delay = run_scenario(get_scenario("link-delay-rbc"), backend="sim")
        assert delay.delayed_messages > 0
        part = run_scenario(get_scenario("partition-heal-smr"), backend="sim")
        assert part.dropped_messages > 0 and part.completed


class TestInprocBackend:
    @pytest.mark.parametrize("name", INPROC_SCENARIOS)
    def test_decided_values_agree_with_sim(self, name):
        spec = get_scenario(name)
        sim = run_scenario(spec, backend="sim")
        live = run_scenario(spec, backend="inproc", timeout=30)
        assert live.completed
        assert sim.decided == live.decided, name
        if sim.count_comparable:
            assert dict(sim.by_type) == dict(live.by_type), name
            assert sim.messages == live.messages

    def test_partition_heals_on_live_runtime(self):
        result = run_scenario(
            get_scenario("partition-heal-smr"), backend="inproc", timeout=30
        )
        assert result.completed
        assert result.dropped_messages > 0


@pytest.mark.tcp
class TestTcpBackend:
    def test_rbc_scenario_over_sockets(self):
        spec = get_scenario("uniform-rbc")
        sim = run_scenario(spec, backend="sim")
        tcp = run_scenario(spec, backend="tcp", timeout=60)
        assert tcp.completed
        assert sim.decided == tcp.decided
        assert dict(sim.by_type) == dict(tcp.by_type)
