"""Sim-vs-runtime equivalence beyond RBC/SMR: VABA and checkpointing.

PR 1 established that the live runtime reproduces the simulator's
outputs for weighted Bracha RBC and composed SMR.  These tests extend the
equivalence bar to the two remaining protocol families -- black-box
weighted VABA (virtual users, Section 4.4) and threshold-signed
checkpointing (blunt and tight, Sections 4.3/6.3) -- driven through the
scenario harness so both backends execute the identical spec.
"""

from repro.scenarios import (
    ScenarioSpec,
    WeightSpec,
    WorkloadSpec,
    get_scenario,
    run_scenario,
)


class TestVabaEquivalence:
    def test_decided_values_agree_and_cover_zero_ticket_parties(self):
        spec = get_scenario("vaba-blackbox")
        sim = run_scenario(spec, backend="sim")
        live = run_scenario(spec, backend="inproc", timeout=30)
        assert sim.completed and live.completed
        assert sim.decided == live.decided
        # every real party outputs, including those the WR solution gave
        # zero tickets (they learn the value through Vouch messages)
        n_real = len(spec.weights.values)
        assert set(sim.decided) == {str(pid) for pid in range(n_real)}
        assert len(set(sim.decided.values())) == 1
        # virtual users outnumber ticket holders' identities for nobody:
        # the cluster hosts exactly the WR ticket total
        assert sim.n_nodes >= 4
        assert sim.n_nodes == live.n_nodes

    def test_reseeded_run_still_agrees_across_backends(self):
        spec = get_scenario("vaba-blackbox").with_seed(41)
        sim = run_scenario(spec, backend="sim")
        live = run_scenario(spec, backend="inproc", timeout=30)
        assert sim.decided == live.decided


class TestCheckpointEquivalence:
    def _spec(self, mode: str) -> ScenarioSpec:
        return ScenarioSpec(
            name=f"checkpoint-{mode}-eq",
            protocol="checkpoint",
            weights=WeightSpec(kind="explicit", values=(40, 25, 15, 10, 5, 3, 1, 1)),
            workload=WorkloadSpec(payload_size=32, epochs=2),
            params=(("mode", mode), ("beta", "1/2")),
            seed=3,
        )

    def test_blunt_certificates_agree(self):
        spec = self._spec("blunt")
        sim = run_scenario(spec, backend="sim")
        live = run_scenario(spec, backend="inproc", timeout=30)
        assert sim.completed and live.completed
        # certificate digests agree per party: the combined threshold
        # signature is subset-independent, so arrival order cannot leak in
        assert sim.decided == live.decided
        assert dict(sim.by_type) == dict(live.by_type)
        assert sim.by_type.get("CheckpointVote", 0) == 0

    def test_tight_certificates_agree_and_pay_the_vote_round(self):
        spec = self._spec("tight")
        sim = run_scenario(spec, backend="sim")
        live = run_scenario(spec, backend="inproc", timeout=30)
        assert sim.decided == live.decided
        assert dict(sim.by_type) == dict(live.by_type)
        n = len(spec.weights.values)
        # the tight gate costs exactly one vote broadcast per party per
        # checkpoint (the paper's +1 message delay claim, in counts)
        assert sim.by_type["CheckpointVote"] == n * n * spec.workload.epochs
