"""Crash-restart fault plans end to end: sim determinism and the proc
backend's SIGKILL-and-respawn recovery.

The acceptance bar from the recovery layer:

* on the sim backend a crash-restart run is byte-deterministic and the
  recovered party's committed log is identical to the fault-free run's;
* on the proc backend the orchestrator really SIGKILLs a worker OS
  process mid-run, respawns it, and the rejoined replica converges on
  the same decided digest as every survivor -- with the recovery
  telemetry (WAL replays, peer syncs, reconnects) in the record.
"""

import dataclasses
import json

import pytest

from repro.scenarios import get_scenario, run_scenario
from repro.scenarios.spec import FaultSpec


def _fault_free(spec):
    return dataclasses.replace(spec, faults=FaultSpec())


class TestSimCrashRestart:
    def test_restart_run_is_byte_deterministic(self):
        spec = get_scenario("crash-restart-smr")
        first = run_scenario(spec, backend="sim")
        again = run_scenario(spec, backend="sim")
        assert first.completed
        assert first.record_json() == again.record_json()

    def test_recovered_party_matches_the_fault_free_log(self):
        spec = get_scenario("crash-restart-smr")
        faulty = run_scenario(spec, backend="sim")
        clean = run_scenario(_fault_free(spec), backend="sim")
        assert faulty.completed and clean.completed
        assert set(faulty.decided.values()) == set(clean.decided.values())
        assert len(set(faulty.decided.values())) == 1
        # the restarted party (pid 2) itself decided the common value
        (restarted_pid, _crash_at, _restart_at), = spec.faults.restarts
        assert faulty.decided[str(restarted_pid)] in clean.decided.values()

    def test_mixed_crash_and_restart_budgets_compose(self):
        """One permanent crash plus one crash-restart under the combined
        f_w budget: the restarted party recovers, the dead one stays
        out, everyone live agrees."""
        spec = get_scenario("crash-restart-mixed-smr")
        result = run_scenario(spec, backend="sim")
        assert result.completed
        (restarted_pid, _, _), = spec.faults.restarts
        assert str(restarted_pid) in result.decided
        assert str(spec.faults.crashes[0]) not in result.decided
        assert len(set(result.decided.values())) == 1

    def test_restart_over_budget_is_rejected(self):
        """A restarted party counts against the crash budget while it is
        down; restarting the heaviest party must fail validation."""
        from repro.api import CommitteeValidationError

        spec = get_scenario("crash-restart-smr")
        over = dataclasses.replace(
            spec, faults=FaultSpec(restarts=((0, 0.2, 1.0),))
        )
        with pytest.raises(CommitteeValidationError):
            run_scenario(over, backend="sim")

    def test_recovery_invariant_flags_a_silent_rejoin_failure(self):
        """The fuzz invariant layer: a completed record whose restarted
        party never decided is a violation."""
        from repro.adversary.invariants import EMPTY_DIGEST, check_record

        spec = get_scenario("crash-restart-smr")
        record = run_scenario(spec, backend="sim").record()
        assert check_record(spec, record) == []
        (restarted_pid, _, _), = spec.faults.restarts
        broken = json.loads(json.dumps(record))
        broken["decided"][str(restarted_pid)] = EMPTY_DIGEST
        assert any(
            v.startswith("recovery") for v in check_record(spec, broken)
        )


@pytest.mark.proc
class TestProcSigkillRecovery:
    def test_sigkilled_worker_rejoins_and_matches_fault_free(self):
        from repro.parallel import run_proc_scenario

        spec = get_scenario("crash-restart-smr")
        result = run_proc_scenario(spec, timeout=60.0)
        assert result.completed
        digests = set(result.decided.values())
        assert len(digests) == 1
        clean = run_proc_scenario(_fault_free(spec), timeout=60.0)
        assert clean.completed
        assert digests == set(clean.decided.values())

        (restarted_pid, _, _), = spec.faults.restarts
        recovery = result.recovery
        assert recovery is not None
        assert recovery["restarts"] >= 1
        node_rec = recovery["nodes"][str(restarted_pid)]
        assert "killed_at" in node_rec and "respawned_at" in node_rec
        assert node_rec["downtime_seconds"] > 0
        # the record carries the rejoin telemetry
        assert result.record()["recovery"]["restarts"] >= 1

    def test_recovery_section_lands_in_the_unified_record(self):
        from repro.parallel import run_proc_scenario

        spec = get_scenario("crash-restart-smr")
        rec = run_proc_scenario(spec, timeout=60.0).record()
        for key in (
            "restarts",
            "recovered_from_wal",
            "recovered_from_peers",
            "reconnects",
            "duplicates_dropped",
            "suspect_transitions",
            "alive_transitions",
        ):
            assert key in rec["recovery"], key
