"""Durability primitives: WAL framing/torn-tail recovery, seeded
backoff, and the heartbeat failure detector.

The WAL's contract is asymmetric by design: a crash may *lose* the
un-fsynced suffix but must never corrupt a record into acceptance --
every torn tail decodes as a clean truncation at the first bad frame.
The backoff schedule's contract is the repo-wide one: with a fixed seed
the delay sequence is a pure function of call order (retry timing is
not allowed to be the one place wall-clock entropy sneaks in).
"""

import random

import pytest

from repro.recovery import (
    BackoffSchedule,
    HeartbeatMonitor,
    InMemoryWal,
    WalError,
    WriteAheadLog,
    open_wal,
)

RECORDS = [
    {"kind": "commit", "epoch": 0, "proposer": 3, "payload": "aa" * 16},
    {"kind": "cert", "epoch": 0, "digest": "0e" * 32, "cert": "beef"},
    {"kind": "watermark", "src": 5, "seq": 17},
]


class TestWriteAheadLog:
    def test_append_replay_roundtrip(self, tmp_path):
        with WriteAheadLog(tmp_path / "p0.wal") as wal:
            for rec in RECORDS:
                wal.append(rec)
        with WriteAheadLog(tmp_path / "p0.wal") as wal:
            assert list(wal.replay()) == RECORDS
            assert wal.records_replayed == len(RECORDS)
            assert wal.torn_records == 0

    def test_reopen_appends_after_existing_records(self, tmp_path):
        path = tmp_path / "p0.wal"
        with WriteAheadLog(path) as wal:
            wal.append(RECORDS[0])
        with WriteAheadLog(path) as wal:
            wal.append(RECORDS[1])
            assert list(wal.replay()) == RECORDS[:2]

    @pytest.mark.parametrize("cut", [1, 3, 7, 11])
    def test_torn_tail_truncates_to_intact_prefix(self, tmp_path, cut):
        """Chop the last frame mid-record: replay yields everything
        before it and counts exactly one torn frame."""
        path = tmp_path / "p0.wal"
        with WriteAheadLog(path) as wal:
            for rec in RECORDS:
                wal.append(rec)
        raw = path.read_bytes()
        lines = raw.splitlines(keepends=True)
        torn = b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) - cut]
        path.write_bytes(torn)
        wal = WriteAheadLog(path)
        assert list(wal.replay()) == RECORDS[:-1]
        assert wal.torn_records == 1
        wal.close()

    def test_corrupt_middle_byte_stops_replay_at_the_flip(self, tmp_path):
        path = tmp_path / "p0.wal"
        with WriteAheadLog(path) as wal:
            for rec in RECORDS:
                wal.append(rec)
        raw = bytearray(path.read_bytes())
        # flip one payload byte of the second frame (past its CRC+colon)
        second_start = raw.index(b"\n") + 1
        raw[second_start + 12] ^= 0xFF
        path.write_bytes(bytes(raw))
        wal = WriteAheadLog(path)
        # frame 1 intact, frame 2 fails its CRC, frame 3 is untrusted
        assert list(wal.replay()) == RECORDS[:1]
        assert wal.torn_records == 1
        wal.close()

    def test_truncate_torn_tail_rewrites_the_file(self, tmp_path):
        path = tmp_path / "p0.wal"
        with WriteAheadLog(path) as wal:
            for rec in RECORDS:
                wal.append(rec)
        intact_size = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b"deadbeef:{\"torn\":")  # crash mid-append
        wal = WriteAheadLog(path)
        dropped = wal.truncate_torn_tail()
        assert dropped > 0
        assert path.stat().st_size == intact_size
        assert list(wal.replay()) == RECORDS
        assert wal.torn_records == 0
        wal.close()

    def test_fsync_batching_counts(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "p0.wal", fsync_every=4)
        for i in range(10):
            wal.append({"i": i})
        assert wal.records_written == 10
        assert wal._unsynced == 2  # 8 of 10 flushed by the batch policy
        wal.close()

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "p0.wal")
        wal.close()
        with pytest.raises(WalError):
            wal.append({"x": 1})

    def test_in_memory_wal_same_surface(self):
        wal = InMemoryWal()
        for rec in RECORDS:
            wal.append(rec)
        assert list(wal.replay()) == RECORDS
        assert wal.truncate_torn_tail() == 0

    def test_open_wal_dispatches_on_state_dir(self, tmp_path):
        assert isinstance(open_wal(None, "p0"), InMemoryWal)
        durable = open_wal(tmp_path, "p0")
        assert isinstance(durable, WriteAheadLog)
        assert durable.path == tmp_path / "p0.wal"
        durable.close()


class TestBackoffSchedule:
    def test_same_seed_same_delay_sequence(self):
        a = BackoffSchedule(base=0.02, max_delay=0.5, seed="3->7")
        b = BackoffSchedule(base=0.02, max_delay=0.5, seed="3->7")
        assert [a.next_delay() for _ in range(12)] == [
            b.next_delay() for _ in range(12)
        ]

    def test_different_seeds_jitter_differently(self):
        a = BackoffSchedule(seed="3->7")
        b = BackoffSchedule(seed="7->3")
        assert [a.next_delay() for _ in range(6)] != [
            b.next_delay() for _ in range(6)
        ]

    def test_exponential_growth_capped_at_max(self):
        sched = BackoffSchedule(base=0.05, max_delay=1.0, jitter=0.0, seed=0)
        delays = [sched.next_delay() for _ in range(8)]
        assert delays[:5] == [0.05, 0.1, 0.2, 0.4, 0.8]
        assert delays[5:] == [1.0, 1.0, 1.0]

    def test_jitter_stays_in_band(self):
        sched = BackoffSchedule(base=0.1, max_delay=0.1, jitter=0.5, seed=1)
        for _ in range(100):
            assert 0.05 <= sched.next_delay() <= 0.15

    def test_reset_restarts_from_base_with_the_stream_advancing(self):
        sched = BackoffSchedule(base=0.05, max_delay=1.0, jitter=0.0, seed=0)
        for _ in range(4):
            sched.next_delay()
        sched.reset()
        assert sched.next_delay() == 0.05

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": 0.0},
            {"base": 0.1, "max_delay": 0.05},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BackoffSchedule(**kwargs)


class TestHeartbeatMonitor:
    def test_silence_suspects_and_a_beat_clears(self):
        mon = HeartbeatMonitor(peers=[1, 2], interval=0.1, suspect_after=3)
        for pid in (1, 2):
            mon.observe(pid, 10.0)
        assert mon.check(10.2) == []
        assert set(mon.check(10.4)) == {1, 2}  # > 3 intervals silent
        assert mon.suspect_transitions == 2
        mon.observe(1, 10.5)
        assert mon.check(10.6) == []
        assert not mon.is_suspected(1)
        assert mon.is_suspected(2)
        assert mon.alive_transitions == 1
