"""Tests for the experiment harness: sweeps, tables, figures, plots."""

from fractions import Fraction

import pytest

from repro.analysis.ascii_plot import heatmap, line_chart
from repro.analysis.figures import build_figure, figure_csv, render_figure
from repro.analysis.metrics import TicketMetrics
from repro.analysis.sweep import TABLE2_WR_PAIRS, alpha_grid_sweep, nfrac_sweep
from repro.analysis.table1 import build_table1, format_table1
from repro.analysis.table2 import TABLE2_COLUMNS, build_table2, format_table2
from repro.datasets.chains import ChainSnapshot
from repro.datasets.synthetic import lognormal_weights


def tiny_snapshot(n=40, total=10**6, seed=0):
    return ChainSnapshot(
        name="tiny",
        weights=tuple(lognormal_weights(n, total, sigma=1.4, seed=seed)),
        declared_n=n,
        declared_total=total,
    )


class TestAlphaGridSweep:
    def test_grid_covers_valid_cells(self):
        points = alpha_grid_sweep(
            tiny_snapshot().weights,
            alpha_ns=[Fraction(1, 2)],
            ratios=[Fraction(1, 2), Fraction(9, 10)],
        )
        assert len(points) == 2
        for p in points:
            assert p.alpha_w == p.ratio * p.alpha_n
            assert p.metrics.total_tickets >= 1

    def test_smaller_gap_means_more_tickets(self):
        """Tickets grow as alpha_w approaches alpha_n (bound ~ 1/gap)."""
        ws = tiny_snapshot().weights
        wide = alpha_grid_sweep(ws, alpha_ns=[Fraction(1, 2)], ratios=[Fraction(3, 10)])
        narrow = alpha_grid_sweep(ws, alpha_ns=[Fraction(1, 2)], ratios=[Fraction(9, 10)])
        assert narrow[0].metrics.total_tickets >= wide[0].metrics.total_tickets


class TestNfracSweep:
    def test_series_shape(self):
        points = nfrac_sweep(
            tiny_snapshot().weights,
            Fraction(1, 3),
            Fraction(1, 2),
            nfracs=(0.25, 1.0),
            trials=3,
            seed=1,
        )
        assert [p.nfrac for p in points] == [0.25, 1.0]
        assert points[0].size == 10
        assert all(p.total_tickets >= 1 for p in points)

    def test_near_linear_scaling(self):
        """Paper claim: total tickets grow close to linearly in n."""
        points = nfrac_sweep(
            tiny_snapshot(n=60).weights,
            Fraction(1, 3),
            Fraction(1, 2),
            nfracs=(0.5, 1.0),
            trials=5,
            seed=2,
        )
        ratio = points[1].total_tickets / max(points[0].total_tickets, 1)
        assert 1.0 <= ratio <= 4.0  # roughly doubling, generous bounds


class TestTable1:
    def test_rows_present(self):
        rows = build_table1()
        names = [r.protocol for r in rows]
        assert any("RNG" in n for n in names)
        assert any("Erasure" in n for n in names)
        assert any("Error-Corrected" in n for n in names)
        assert any("Black-Box" in n for n in names)

    def test_headline_factors(self):
        """The worked examples of Sections 4-5 come out exactly."""
        rows = {r.protocol: r for r in build_table1()}
        rng = rows["Distributed RNG / Common Coin"]
        assert rng.comm_overhead == Fraction(4, 3)
        storage = rows["Erasure-Coded Storage/Broadcast"]
        assert storage.comp_overhead == Fraction(32, 9)  # ~3.56
        ec = rows["Error-Corrected Broadcast"]
        assert ec.comp_overhead == Fraction(64, 9)  # ~7.11
        high = rows["High-Threshold Erasure Storage"]
        assert high.comp_overhead == Fraction(16, 9)  # ~1.78

    def test_formatting(self):
        out = format_table1(build_table1())
        assert "x1.33" in out and "x3.56" in out and "x7.11" in out


class TestTable2:
    def test_build_and_format(self):
        rows = build_table2([tiny_snapshot()], columns=TABLE2_COLUMNS[:2])
        assert len(rows) == 1
        row = rows[0]
        assert row.system == "tiny"
        assert len(row.cells) == 2
        for cell in row.cells:
            assert cell.linear_tickets >= cell.full_tickets
        out = format_table2(rows)
        assert "tiny" in out

    def test_linear_surplus_rendering(self):
        from repro.analysis.table2 import Table2Cell

        assert Table2Cell("x", 10, 12).render() == "10 (+2)"
        assert Table2Cell("x", 10, 10).render() == "10"


class TestFigures:
    def test_build_render_csv(self):
        fig = build_figure(
            tiny_snapshot(),
            alpha_ns=[Fraction(1, 2)],
            ratios=[Fraction(1, 2)],
            pairs=[(Fraction(1, 3), Fraction(1, 2))],
            nfracs=(0.5, 1.0),
            trials=2,
        )
        text = render_figure(fig)
        assert "Total tickets" in text and "# Holders" in text
        grid_csv, scale_csv = figure_csv(fig)
        assert grid_csv.splitlines()[0].startswith("alpha_n,")
        assert len(scale_csv.splitlines()) == 3  # header + 2 points


class TestAsciiPlot:
    def test_heatmap_renders(self):
        out = heatmap([[1.0, 2.0], [3.0, None]], title="t", row_labels=["a", "b"])
        assert "t" in out and "scale:" in out

    def test_heatmap_empty(self):
        assert "(empty)" in heatmap([[None]])

    def test_line_chart_renders(self):
        out = line_chart({"s": [(0, 0), (1, 1)]}, title="chart")
        assert "chart" in out and "legend" in out

    def test_line_chart_empty(self):
        assert "(empty)" in line_chart({})


class TestReport:
    def test_write_text_and_csv(self, tmp_path):
        from repro.analysis.report import write_csv_rows, write_text

        p = write_text("a.txt", "hello", base=tmp_path)
        assert p.read_text() == "hello"
        p = write_csv_rows("b.csv", ["x", "y"], [[1, 2], [3, 4]], base=tmp_path)
        assert p.read_text() == "x,y\n1,2\n3,4\n"
