"""Tests for the discrete-event scheduler."""

import pytest

from repro.sim.events import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.schedule(1.0, lambda: order.append(3))
        sim.run()
        assert order == [1, 2, 3]

    def test_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        order = []

        def outer():
            order.append("outer")
            sim.schedule(1.0, lambda: order.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        ran = []
        ev = sim.schedule(1.0, lambda: ran.append(1))
        sim.cancel(ev)
        sim.run()
        assert ran == []

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        sim.cancel(ev)
        assert sim.pending == 1


class TestRunLimits:
    def test_until(self):
        sim = Simulator()
        ran = []
        sim.schedule(1.0, lambda: ran.append(1))
        sim.schedule(10.0, lambda: ran.append(2))
        sim.run(until=5.0)
        assert ran == [1]
        sim.run()
        assert ran == [1, 2]

    def test_max_events(self):
        sim = Simulator()
        ran = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda i=i: ran.append(i))
        sim.run(max_events=2)
        assert ran == [0, 1]

    def test_stop_when(self):
        sim = Simulator()
        ran = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda i=i: ran.append(i))
        sim.run(stop_when=lambda: len(ran) >= 3)
        assert len(ran) == 3

    def test_step_empty_queue(self):
        sim = Simulator()
        assert sim.step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 2
