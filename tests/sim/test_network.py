"""Tests for the simulated network, delay models, and metrics."""

import random
from dataclasses import dataclass

import pytest

from repro.sim.events import Simulator
from repro.sim.network import Network, TargetedDelay, UniformDelay
from repro.sim.process import Party


@dataclass(frozen=True)
class Ping:
    payload: bytes = b""


class Recorder(Party):
    def __init__(self, pid):
        super().__init__(pid)
        self.inbox = []
        self.on(Ping, lambda m, s: self.inbox.append((s, m)))


def make_net(n=3, seed=0, delay=None):
    sim = Simulator()
    net = Network(sim, delay or UniformDelay(), seed=seed)
    parties = [Recorder(i) for i in range(n)]
    for p in parties:
        net.register(p)
    return sim, net, parties


class TestDelivery:
    def test_send_delivers(self):
        sim, net, parties = make_net()
        net.send(0, 1, Ping())
        sim.run()
        assert len(parties[1].inbox) == 1
        assert parties[1].inbox[0][0] == 0

    def test_broadcast_includes_self_by_default(self):
        sim, net, parties = make_net()
        net.broadcast(0, Ping())
        sim.run()
        assert all(len(p.inbox) == 1 for p in parties)

    def test_broadcast_exclude_self(self):
        sim, net, parties = make_net()
        net.broadcast(0, Ping(), include_self=False)
        sim.run()
        assert len(parties[0].inbox) == 0
        assert len(parties[1].inbox) == 1

    def test_unknown_destination(self):
        sim, net, parties = make_net()
        with pytest.raises(KeyError):
            net.send(0, 99, Ping())

    def test_duplicate_registration_rejected(self):
        sim, net, parties = make_net()
        with pytest.raises(ValueError):
            net.register(Recorder(0))

    def test_crashed_party_ignores(self):
        sim, net, parties = make_net()
        parties[2].crash()
        net.send(0, 2, Ping())
        sim.run()
        assert parties[2].inbox == []

    def test_determinism_for_fixed_seed(self):
        def trace(seed):
            sim, net, parties = make_net(seed=seed)
            for i in range(3):
                net.broadcast(i, Ping())
            events = []
            while sim.step():
                events.append(round(sim.now, 9))
            return events

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)


class TestMetrics:
    def test_message_and_byte_counts(self):
        sim, net, parties = make_net()
        net.send(0, 1, Ping(payload=b"abcd"))
        net.send(0, 2, Ping())
        assert net.metrics.messages == 2
        assert net.metrics.by_type["Ping"] == 2
        # 64-byte header + 4 payload bytes for the first message.
        assert net.metrics.bytes == 64 + 4 + 64

    def test_wire_size_hook(self):
        @dataclass(frozen=True)
        class Sized:
            def wire_size(self):
                return 1000

        sim, net, parties = make_net()
        parties[0].on(Sized, lambda m, s: None)
        net.send(1, 0, Sized())
        assert net.metrics.bytes == 1000


class TestDelayModels:
    def test_uniform_within_bounds(self):
        model = UniformDelay(low=0.5, high=1.0)
        rng = random.Random(0)
        for _ in range(100):
            d = model.delay(0, 1, rng)
            assert 0.5 <= d <= 1.0

    def test_targeted_slows_selected(self):
        base = UniformDelay(low=1.0, high=1.0)
        model = TargetedDelay(base=base, slow_parties=frozenset({3}), factor=10.0)
        rng = random.Random(0)
        assert model.delay(0, 1, rng) == 1.0
        assert model.delay(0, 3, rng) == 10.0
        assert model.delay(3, 0, rng) == 10.0

    def test_targeted_preserves_eventual_delivery(self):
        """Slowed traffic still arrives -- asynchrony, not partition."""
        model = TargetedDelay(
            base=UniformDelay(), slow_parties=frozenset({1}), factor=100.0
        )
        sim, net, parties = make_net(delay=model)
        net.send(0, 1, Ping())
        sim.run()
        assert len(parties[1].inbox) == 1
