"""Tests for corruption strategies."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.adversary import (
    corrupt_weight_fraction,
    heaviest_under,
    most_tickets_under,
    nominal_corruption,
    random_under,
)


class TestNominal:
    def test_basic(self):
        assert nominal_corruption(7, 2) == {0, 1}
        assert nominal_corruption(5, 0) == set()

    def test_validation(self):
        with pytest.raises(ValueError):
            nominal_corruption(3, 4)


class TestBudgetRespected:
    WEIGHTS = [40, 25, 15, 10, 5, 3, 1, 1]

    def _check_budget(self, corrupt, fraction):
        assert corrupt_weight_fraction(self.WEIGHTS, corrupt) < Fraction(fraction)

    def test_heaviest(self):
        corrupt = heaviest_under(self.WEIGHTS, "1/3")
        self._check_budget(corrupt, "1/3")

    def test_most_tickets(self):
        tickets = [3, 2, 1, 1, 0, 0, 0, 0]
        corrupt = most_tickets_under(self.WEIGHTS, tickets, "1/3")
        self._check_budget(corrupt, "1/3")

    def test_random(self):
        for seed in range(5):
            corrupt = random_under(self.WEIGHTS, "1/3", random.Random(seed))
            self._check_budget(corrupt, "1/3")

    def test_most_tickets_length_mismatch(self):
        with pytest.raises(ValueError):
            most_tickets_under(self.WEIGHTS, [1, 2], "1/3")


class TestGreedyQuality:
    def test_heaviest_takes_heaviest_feasible(self):
        # Budget < 1/2: the single heaviest feasible party must be chosen
        # (greedy order starts with it).
        weights = [10, 5, 4, 1]
        corrupt = heaviest_under(weights, "1/4")  # budget 5: take 4 and 1?
        # Greedy tries 10 (no), 5 (no: 5 < 5 false), 4 (yes), 1 (no: 4+1<5 false)
        assert corrupt == {2}

    def test_most_tickets_prefers_dense(self):
        weights = [10, 10, 1]
        tickets = [1, 1, 1]
        corrupt = most_tickets_under(weights, tickets, "1/2")
        # Budget 10.5: the 1-weight party is densest (1 ticket / 1 weight);
        # then a 10-weight party does not fit (11 >= 10.5)... 1+10=11 > 10.5,
        # so only the dense party plus nothing else.
        assert 2 in corrupt

    @settings(max_examples=40, deadline=None)
    @given(
        weights=st.lists(
            st.integers(min_value=1, max_value=100), min_size=1, max_size=10
        ),
        frac_pct=st.integers(min_value=1, max_value=99),
    )
    def test_property_all_strategies_under_budget(self, weights, frac_pct):
        fraction = Fraction(frac_pct, 100)
        for strategy in (
            lambda: heaviest_under(weights, fraction),
            lambda: most_tickets_under(weights, [1] * len(weights), fraction),
            lambda: random_under(weights, fraction, random.Random(1)),
        ):
            corrupt = strategy()
            assert corrupt_weight_fraction(weights, corrupt) < fraction
