"""Tests for the CLI mirroring the paper's prototype interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_wr_arguments(self):
        args = build_parser().parse_args(
            ["wr", "--alpha-w", "1/3", "--alpha-n", "1/2", "--weights", "1", "2"]
        )
        assert args.problem == "wr"
        assert args.alpha_w == "1/3"
        assert not args.linear

    def test_weight_sources_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "wr", "--alpha-w", "1/3", "--alpha-n", "1/2",
                    "--weights", "1", "--chain", "tezos",
                ]
            )


class TestMain:
    def test_wr_inline(self, capsys):
        code = main(
            ["wr", "--alpha-w", "1/3", "--alpha-n", "1/2", "--weights", "40", "25", "15"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total tickets" in out

    def test_wq_linear_mode(self, capsys):
        code = main(
            [
                "wq", "--beta-w", "2/3", "--beta-n", "1/2",
                "--weights", "40", "25", "15", "10", "--linear",
            ]
        )
        assert code == 0
        assert "mode            : linear" in capsys.readouterr().out

    def test_ws_full_output(self, capsys):
        code = main(
            [
                "ws", "--alpha", "1/3", "--beta", "1/2",
                "--weights", "4", "3", "2", "1", "--full-output",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "party 0:" in out

    def test_weights_file(self, tmp_path, capsys):
        f = tmp_path / "w.txt"
        f.write_text("100\n50\n\n25\n")
        code = main(
            ["wr", "--alpha-w", "1/4", "--alpha-n", "1/3", "--weights-file", str(f)]
        )
        assert code == 0
        assert "parties (n)     : 3" in capsys.readouterr().out

    def test_invalid_parameters_exit_code(self, capsys):
        code = main(
            ["wr", "--alpha-w", "1/2", "--alpha-n", "1/3", "--weights", "1", "2"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_fraction_weights(self, capsys):
        code = main(
            ["wr", "--alpha-w", "1/3", "--alpha-n", "1/2", "--weights", "1/2", "0.25", "3"]
        )
        assert code == 0
