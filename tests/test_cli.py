"""Tests for the CLI mirroring the paper's prototype interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_wr_arguments(self):
        args = build_parser().parse_args(
            ["wr", "--alpha-w", "1/3", "--alpha-n", "1/2", "--weights", "1", "2"]
        )
        assert args.problem == "wr"
        assert args.alpha_w == "1/3"
        assert not args.linear

    def test_weight_sources_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "wr", "--alpha-w", "1/3", "--alpha-n", "1/2",
                    "--weights", "1", "--chain", "tezos",
                ]
            )


class TestMain:
    def test_wr_inline(self, capsys):
        code = main(
            ["wr", "--alpha-w", "1/3", "--alpha-n", "1/2", "--weights", "40", "25", "15"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total tickets" in out

    def test_wq_linear_mode(self, capsys):
        code = main(
            [
                "wq", "--beta-w", "2/3", "--beta-n", "1/2",
                "--weights", "40", "25", "15", "10", "--linear",
            ]
        )
        assert code == 0
        assert "mode            : linear" in capsys.readouterr().out

    def test_ws_full_output(self, capsys):
        code = main(
            [
                "ws", "--alpha", "1/3", "--beta", "1/2",
                "--weights", "4", "3", "2", "1", "--full-output",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "party 0:" in out

    def test_weights_file(self, tmp_path, capsys):
        f = tmp_path / "w.txt"
        f.write_text("100\n50\n\n25\n")
        code = main(
            ["wr", "--alpha-w", "1/4", "--alpha-n", "1/3", "--weights-file", str(f)]
        )
        assert code == 0
        assert "parties (n)     : 3" in capsys.readouterr().out

    def test_invalid_parameters_exit_code(self, capsys):
        code = main(
            ["wr", "--alpha-w", "1/2", "--alpha-n", "1/3", "--weights", "1", "2"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_fraction_weights(self, capsys):
        code = main(
            ["wr", "--alpha-w", "1/3", "--alpha-n", "1/2", "--weights", "1/2", "0.25", "3"]
        )
        assert code == 0


class TestJsonOutput:
    def test_wr_json(self, capsys):
        code = main(
            [
                "wr", "--alpha-w", "1/3", "--alpha-n", "1/2",
                "--weights", "40", "25", "15", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["problem"] == "wr"
        assert payload["parties"] == 3
        assert payload["total_tickets"] >= 1
        assert "tickets" not in payload

    def test_ws_json_full_output(self, capsys):
        code = main(
            [
                "ws", "--alpha", "1/3", "--beta", "1/2",
                "--weights", "4", "3", "2", "1", "--json", "--full-output",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["tickets"]) == 4

    def test_bound_serialization(self):
        from fractions import Fraction

        from repro.cli import _bound_as_json

        assert _bound_as_json(6) == 6
        assert _bound_as_json(Fraction(4, 1)) == 4
        assert _bound_as_json(Fraction(7, 2)) == "7/2"

    def test_json_error_still_exit_2(self, capsys):
        code = main(
            ["wq", "--beta-w", "1/3", "--beta-n", "2/3", "--weights", "bogus", "--json"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestPolicySelection:
    def test_policy_flag_selects_registry_entry(self, capsys):
        code = main(
            [
                "wr", "--alpha-w", "1/3", "--alpha-n", "1/2",
                "--weights", "40", "25", "15", "10", "--policy", "milp", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "milp"
        assert payload["total_tickets"] >= 1

    def test_linear_flag_maps_to_linear_policy(self, capsys):
        code = main(
            ["wr", "--alpha-w", "1/3", "--alpha-n", "1/2",
             "--weights", "40", "25", "15", "--linear", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "swiper-linear"
        assert payload["mode"] == "linear"

    def test_linear_conflicts_with_other_policy(self, capsys):
        code = main(
            ["wr", "--alpha-w", "1/3", "--alpha-n", "1/2",
             "--weights", "1", "2", "--linear", "--policy", "milp"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestUnifiedJsonErrors:
    """Infeasible combos: status 2 and one {"error": ...} shape everywhere."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["cluster", "rbc", "--n", "5", "--weights", "1", "2", "--json"],
            ["cluster", "rbc", "--weights", "40", "25", "15", "10",
             "--crash", "0", "--json"],
            ["cluster", "smr", "--n", "4", "--f-w", "2/3", "--json"],
            ["scenario", "nope", "--json"],
            ["scenario", "--json"],
            ["wr", "--alpha-w", "1/2", "--alpha-n", "1/3", "--weights", "1", "--json"],
        ],
        ids=["n-mismatch", "crash-budget", "bad-f-w", "unknown-scenario",
             "missing-name", "bad-problem"],
    )
    def test_json_error_shape(self, argv, capsys):
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        payload = json.loads(captured.err)
        assert set(payload) == {"error"}
        assert payload["error"]


class TestClusterCommand:
    def test_rbc_inproc_weighted(self, capsys):
        code = main(
            [
                "cluster", "rbc",
                "--weights", "40", "25", "15", "10", "5", "3", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rbc (weighted quorums)" in out
        assert "messages" in out

    def test_smr_inproc_json(self, capsys):
        code = main(["cluster", "smr", "--n", "4", "--epochs", "2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["protocol"] == "smr"
        assert payload["layout"] == "nominal"
        assert payload["metrics"]["messages"] > 0
        assert payload["metrics"]["bytes"] > 0
        assert payload["metrics"]["elapsed_seconds"] > 0

    def test_nominal_crash_not_subject_to_weighted_budget(self, capsys):
        # The f_w*W budget check is a weighted-quorum concept; nominal
        # layouts are governed by t = (n-1)//3 only, so a small --f-w
        # must not reject a crash set the nominal layout tolerates.
        code = main(
            ["cluster", "rbc", "--n", "7", "--f-w", "1/10", "--crash", "0", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["layout"] == "nominal"
        assert payload["crashed"] == [0]

    def test_rbc_with_crash(self, capsys):
        code = main(
            [
                "cluster", "rbc", "--weights", "40", "25", "15", "10", "5", "3", "1",
                "--crash", "6", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["crashed"] == [6]

    @pytest.mark.parametrize(
        "argv",
        [
            ["cluster", "rbc", "--n", "3"],  # nominal needs n >= 4
            ["cluster", "rbc"],  # no size and no weights
            ["cluster", "rbc", "--n", "5", "--weights", "1", "2"],  # mismatch
            ["cluster", "smr", "--n", "4", "--epochs", "0"],
            ["cluster", "rbc", "--n", "4", "--payload-size", "0"],
            ["cluster", "rbc", "--n", "4", "--crash", "9"],
            ["cluster", "rbc", "--n", "4", "--crash", "0", "1", "2", "3"],
            ["cluster", "smr", "--n", "4", "--f-w", "2/3"],
            ["cluster", "rbc", "--n", "4", "--f-w", "1/0"],
            ["cluster", "rbc", "--weights", "40", "25", "15", "10", "--crash", "0"],
            ["cluster", "rbc", "--n", "7", "--crash", "0", "1", "2"],
        ],
        ids=[
            "small-n", "no-size", "n-mismatch", "zero-epochs",
            "zero-payload", "bad-crash", "all-crashed", "bad-f-w",
            "zero-denominator", "crash-beyond-weight-budget", "crash-beyond-t",
        ],
    )
    def test_invalid_combinations_exit_2(self, argv, capsys):
        assert main(argv) == 2
        assert "error" in capsys.readouterr().err

    @pytest.mark.tcp
    def test_rbc_tcp_json(self, capsys):
        code = main(["cluster", "rbc", "--n", "4", "--transport", "tcp", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["transport"] == "tcp"
        assert payload["metrics"]["messages"] == 4 + 16 + 16


class TestScenarioCommand:
    def test_list_shows_registry(self, capsys):
        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        # at least the 8 regimes the issue names, one line each + header
        assert len(out.strip().splitlines()) >= 9
        assert "uniform-rbc" in out and "partition-heal-smr" in out

    def test_list_json(self, capsys):
        assert main(["scenario", "--list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [s["name"] for s in payload["scenarios"]]
        assert len(names) >= 8 and "vaba-blackbox" in names

    def test_run_sim_json_record(self, capsys):
        assert main(["scenario", "uniform-rbc", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["backend"] == "sim"
        assert record["completed"] is True
        assert record["messages"] > 0
        assert len(set(record["decided"].values())) == 1

    def test_run_inproc_human_output(self, capsys):
        assert main(["scenario", "skewed-quorum-rbc", "--backend", "inproc"]) == 0
        out = capsys.readouterr().out
        assert "completed       : True" in out
        assert "wall clock" in out

    def test_seed_override_changes_decided(self, capsys):
        assert main(["scenario", "uniform-rbc", "--json"]) == 0
        base = json.loads(capsys.readouterr().out)
        assert main(["scenario", "uniform-rbc", "--seed", "5", "--json"]) == 0
        reseeded = json.loads(capsys.readouterr().out)
        assert base["seed"] == 0 and reseeded["seed"] == 5
        assert base["decided"] != reseeded["decided"]

    def test_save_writes_artifact(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["scenario", "crash-f-rbc", "--save", "--json"]) == 0
        artifact = tmp_path / "scenario_crash-f-rbc_sim_seed0.json"
        assert artifact.exists()
        assert json.loads(artifact.read_text())["scenario"] == "crash-f-rbc"

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_missing_name_exits_2(self, capsys):
        assert main(["scenario"]) == 2
        assert "error" in capsys.readouterr().err


class TestServe:
    _BASE = [
        "serve", "--weights", "40", "30", "20", "10",
        "--rate", "150", "--requests", "24",
        "--slot-interval", "0.02", "--slots-per-epoch", "2",
    ]

    def test_serve_json_happy_path(self, capsys):
        code = main([*self._BASE, "--drift", "1:3:15", "--json"])
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["completed"] is True
        assert record["workload"] == "service"
        svc = record["service"]
        assert svc["requests_committed"] == 24
        assert svc["rotations"] >= 1
        modes = [ep["solver_mode"] for ep in svc["epochs"]]
        assert modes[0] == "cold" and "incremental" in modes[1:]

    def test_serve_human_output(self, capsys):
        assert main(self._BASE) == 0
        out = capsys.readouterr().out
        assert "rotations" in out
        assert "24/24 committed" in out

    def test_infeasible_rotation_is_uniform_error_exit_2(self, capsys):
        drifts = [arg for i in range(4) for arg in ("--drift", f"1:{i}:0")]
        code = main([*self._BASE, *drifts, "--json"])
        assert code == 2
        err = json.loads(capsys.readouterr().err)
        assert "epoch 1" in err["error"]

    def test_malformed_drift_exits_2(self, capsys):
        assert main([*self._BASE, "--drift", "nope"]) == 2
        assert "E:I:W" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "drift",
        ["1:2", "1:2:3:4", "a:b:c", "1:2:", "::", "1.5:2:3"],
        ids=["two-fields", "four-fields", "non-numeric", "empty-weight",
             "all-empty", "float-epoch"],
    )
    def test_every_malformed_drift_shape_is_uniform_json_error(
        self, drift, capsys
    ):
        # One error contract for the whole subcommand: exit 2 and a
        # {"error": ...} object on stderr, never a traceback, regardless
        # of which way the E:I:W spec is malformed.
        code = main([*self._BASE, "--drift", drift, "--json"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.out == ""
        err = json.loads(captured.err)
        assert set(err) == {"error"}
        assert isinstance(err["error"], str) and err["error"]

    def test_malformed_drift_beats_valid_ones(self, capsys):
        # A bad spec poisons the invocation even next to valid ones.
        code = main(
            [*self._BASE, "--drift", "1:3:15", "--drift", "oops", "--json"]
        )
        assert code == 2
        assert "error" in json.loads(capsys.readouterr().err)

    def test_serve_inproc_backend(self, capsys):
        code = main([*self._BASE, "--backend", "inproc", "--json"])
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["completed"] is True
        assert record["service"]["requests_committed"] == 24


class TestFuzz:
    def test_clean_campaign_exits_0_with_summary(self, capsys):
        code = main(["fuzz", "--episodes", "12", "--seed", "5", "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["episodes"] == 12
        assert summary["violations"] == 0
        assert summary["seed"] == 5
        assert summary["checked"] + summary["skipped"] == 12

    def test_human_output_names_the_kinds(self, capsys):
        assert main(["fuzz", "--episodes", "8", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "episodes" in out and "violations: 0" in out

    def test_replay_of_a_probe_spec(self, capsys):
        spec = {"seed": 0, "episode": 0, "kind": "dleq-forge", "probe_seed": 123}
        code = main(["fuzz", "--replay", json.dumps(spec), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == []
        assert payload["replayed"]["kind"] == "dleq-forge"

    def test_replay_strips_recorded_violations(self, capsys):
        # A persisted failure line carries its violations; replaying it
        # re-derives the verdict instead of trusting the recording.
        spec = {"seed": 0, "episode": 0, "kind": "rs-error-flood",
                "probe_seed": 7, "violations": ["stale: from the recording"]}
        code = main(["fuzz", "--replay", json.dumps(spec), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == []
        assert "violations" not in payload["replayed"]

    def test_replay_from_failures_file(self, tmp_path, capsys):
        spec = {"seed": 1, "episode": 3, "kind": "coin-unpredictability",
                "probe_seed": 99}
        path = tmp_path / "failures.jsonl"
        path.write_text(json.dumps(spec) + "\n")
        code = main(["fuzz", "--replay", f"@{path}", "--json"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["violations"] == []

    @pytest.mark.parametrize(
        "replay",
        ["not json", "@/no/such/file.jsonl", '{"kind": "no-such-kind"}'],
        ids=["bad-json", "missing-file", "unknown-kind"],
    )
    def test_bad_replay_is_uniform_json_error_exit_2(self, replay, capsys):
        code = main(["fuzz", "--replay", replay, "--json"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.out == ""
        err = json.loads(captured.err)
        assert set(err) == {"error"}

    def test_failures_out_is_not_written_on_a_clean_campaign(self, tmp_path):
        path = tmp_path / "failures.jsonl"
        code = main(
            ["fuzz", "--episodes", "6", "--seed", "5",
             "--failures-out", str(path), "--json"]
        )
        assert code == 0
        assert not path.exists()


class TestJobsFlag:
    """--jobs on fuzz/scenario: malformed values hit the uniform
    {"error": ...} exit-2 path (argparse never sees the value, so its
    non-JSON usage error can't leak); well-formed values run."""

    @pytest.mark.parametrize("bad", ["0", "-3", "nope", "1.5", ""])
    def test_fuzz_rejects_malformed_jobs(self, bad, capsys):
        code = main(["fuzz", "--episodes", "2", "--jobs", bad, "--json"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.out == ""
        err = json.loads(captured.err)
        assert set(err) == {"error"}
        assert "--jobs" in err["error"]

    @pytest.mark.parametrize("bad", ["0", "auto8", "-1"])
    def test_scenario_sweep_rejects_malformed_jobs(self, bad, capsys):
        code = main(["scenario", "--all", "--jobs", bad, "--json"])
        captured = capsys.readouterr()
        assert code == 2
        assert set(json.loads(captured.err)) == {"error"}

    def test_single_scenario_rejects_malformed_jobs(self, capsys):
        code = main(["scenario", "uniform-rbc", "--jobs", "zero", "--json"])
        assert code == 2
        assert set(json.loads(capsys.readouterr().err)) == {"error"}

    def test_fuzz_accepts_jobs_one(self, capsys):
        code = main(["fuzz", "--episodes", "4", "--jobs", "1", "--json"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["episodes"] == 4

    @pytest.mark.proc
    def test_fuzz_jobs_two_matches_sequential(self, capsys):
        code = main(["fuzz", "--episodes", "6", "--seed", "3", "--json"])
        assert code == 0
        sequential = capsys.readouterr().out
        code = main(
            ["fuzz", "--episodes", "6", "--seed", "3", "--jobs", "2", "--json"]
        )
        assert code == 0
        assert capsys.readouterr().out == sequential


class TestScenarioSweep:
    def test_all_runs_the_whole_registry(self, capsys):
        code = main(["scenario", "--all", "--json"])
        assert code == 0
        records = json.loads(capsys.readouterr().out)["records"]
        assert len(records) >= 10
        assert all(rec["completed"] in (True, False) for rec in records)

    @pytest.mark.proc
    def test_sweep_output_is_identical_across_jobs(self, capsys):
        code = main(["scenario", "--all", "--json"])
        assert code == 0
        sequential = capsys.readouterr().out
        code = main(["scenario", "--all", "--jobs", "2", "--json"])
        assert code == 0
        assert capsys.readouterr().out == sequential


@pytest.mark.proc
class TestProcBackendCli:
    def test_scenario_proc_reports_distinct_worker_pids(self, capsys):
        code = main(["scenario", "uniform-rbc", "--backend", "proc", "--json"])
        assert code == 0
        rec = json.loads(capsys.readouterr().out)
        assert rec["backend"] == "proc"
        assert rec["completed"] is True
        pids = list(rec["workers"].values())
        assert len(set(pids)) == len(pids) == 8

    def test_cluster_proc_two_workers(self, capsys):
        code = main(
            ["cluster", "rbc", "--transport", "proc", "--n", "4", "--json"]
        )
        assert code == 0
        rec = json.loads(capsys.readouterr().out)
        assert rec["transport"] == "proc"
        assert rec["completed"] is True
        assert len(set(rec["workers"].values())) == 4

    def test_worker_crash_is_uniform_json_error_exit_2(self, capsys, monkeypatch):
        from repro.parallel.proc import CRASH_ENV

        monkeypatch.setenv(CRASH_ENV, "0")
        code = main(["scenario", "uniform-rbc", "--backend", "proc", "--json"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.out == ""
        assert set(json.loads(captured.err)) == {"error"}

    def test_timeout_is_uniform_json_error_exit_2(self, capsys):
        code = main(
            ["scenario", "uniform-rbc", "--backend", "proc",
             "--timeout", "0.001", "--json"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert set(json.loads(captured.err)) == {"error"}
