"""Unit tests for the record-level safety invariants the fuzz campaign
checks on every episode.

These run :func:`check_record` against synthetic records -- each test
plants exactly one violation shape and asserts the checker names it --
so a silent checker regression cannot hide behind a healthy campaign.
"""

from repro.adversary import EMPTY_DIGEST, check_record
from repro.scenarios import (
    ByzantineSpec,
    FaultSpec,
    ScenarioSpec,
    WeightSpec,
)


def _spec(protocol="smr", byzantine=(), crashes=()):
    return ScenarioSpec(
        name="inv-test",
        protocol=protocol,
        weights=WeightSpec(kind="explicit", values=(4, 3, 2, 1)),
        faults=FaultSpec(
            byzantine=tuple(ByzantineSpec(s) for s in byzantine),
            crashes=crashes,
        ),
    )


def _record(**overrides):
    record = {
        "completed": True,
        "n_real": 4,
        "decided": {str(p): "aaaa" for p in range(4)},
        "adversary": None,
    }
    record.update(overrides)
    return record


class TestAgreement:
    def test_clean_record_has_no_violations(self):
        assert check_record(_spec(), _record()) == []

    def test_two_decided_values_violate_agreement(self):
        record = _record(decided={"0": "aaaa", "1": "aaaa", "2": "bbbb"})
        violations = check_record(_spec(), record)
        assert any(v.startswith("agreement") for v in violations)

    def test_empty_digest_is_not_a_decision(self):
        # A party that delivered nothing does not disagree with one that
        # did -- RBC under a Byzantine sender may deliver at a subset.
        record = _record(decided={"0": "aaaa", "1": EMPTY_DIGEST})
        assert check_record(_spec(), record) == []


class TestLiveness:
    def test_incomplete_run_without_byzantine_plan_violates(self):
        violations = check_record(_spec(), _record(completed=False))
        assert any(v.startswith("liveness") for v in violations)

    def test_incomplete_run_is_allowed_when_strategy_breaks_liveness(self):
        record = _record(
            completed=False,
            decided={str(p): EMPTY_DIGEST for p in range(4)},
            adversary={
                "strategies": ["equivocate"],
                "corrupted": [0],
                "expect_liveness": False,
            },
        )
        assert check_record(_spec("rbc", byzantine=("equivocate",)), record) == []


class TestRbcValidity:
    def test_delivering_a_non_sender_payload_violates_validity(self):
        from repro.scenarios.harness import _digest, _payload

        spec = _spec("rbc")
        honest = _digest(_payload(spec, 0, 0))
        assert check_record(spec, _record(decided={"0": honest})) == []
        violations = check_record(spec, _record(decided={"0": "ffff"}))
        assert any(v.startswith("validity") for v in violations)

    def test_corrupted_sender_makes_no_validity_claim(self):
        spec = _spec("rbc", byzantine=("equivocate",))
        record = _record(
            decided={"1": "ffff", "2": "ffff", "3": "ffff"},
            adversary={
                "strategies": ["equivocate"],
                "corrupted": [0],
                "expect_liveness": False,
            },
            completed=False,
        )
        assert check_record(spec, record) == []


class TestServiceLog:
    def _service(self, epochs, **extra):
        service = {
            "epochs": epochs,
            "requests_submitted": 10,
            "requests_committed": 10,
            "rotations": len(epochs) - 1 if epochs else 0,
        }
        service.update(extra)
        return service

    def test_contiguous_epochs_pass(self):
        epochs = [
            {"epoch": 0, "first_slot": 0, "last_slot": 3},
            {"epoch": 1, "first_slot": 3, "last_slot": 5},
        ]
        record = _record(service=self._service(epochs))
        assert check_record(_spec(), record) == []

    def test_slot_gap_is_a_violation(self):
        epochs = [
            {"epoch": 0, "first_slot": 0, "last_slot": 3},
            {"epoch": 1, "first_slot": 4, "last_slot": 6},
        ]
        record = _record(service=self._service(epochs))
        violations = check_record(_spec(), record)
        assert any("gap in committed log" in v for v in violations)

    def test_request_loss_is_a_violation(self):
        epochs = [{"epoch": 0, "first_slot": 0, "last_slot": 3}]
        record = _record(
            service=self._service(epochs, requests_committed=7)
        )
        violations = check_record(_spec(), record)
        assert any("request loss" in v for v in violations)

    def test_rotation_count_mismatch_is_a_violation(self):
        epochs = [
            {"epoch": 0, "first_slot": 0, "last_slot": 3},
            {"epoch": 1, "first_slot": 3, "last_slot": 5},
        ]
        record = _record(service=self._service(epochs, rotations=3))
        violations = check_record(_spec(), record)
        assert any("rotation count" in v for v in violations)
