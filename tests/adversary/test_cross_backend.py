"""One ScenarioSpec fault-plan entry = the same attack on every backend.

The adversary corrupts parties by patching the instances the driver
factory builds, and both backends build parties through that factory --
so each strategy must produce the same corruption set, the same honest
outputs, and (on the sim) byte-identical records run over run.  The
liveness-breaking case (equivocating RBC sender) is exercised for the
safety half of the claim: honest parties may deliver nothing, but never
disagree.
"""

import json

import pytest

from repro.adversary import check_record
from repro.scenarios import (
    ByzantineSpec,
    FaultSpec,
    ScenarioSpec,
    WeightSpec,
    WorkloadSpec,
    get_scenario,
    run_scenario,
)

STAKE = (40, 25, 15, 10, 5, 3, 1, 1)

#: liveness-preserving registry scenarios that must agree across backends
CROSS_BACKEND = ("equivocate-smr", "garble-rbc", "share-flood-checkpoint")


class TestSimSafety:
    @pytest.mark.parametrize(
        "name",
        [
            "equivocate-smr",
            "garble-rbc",
            "pivot-delay-smr",
            "adaptive-silence-smr",
            "share-flood-checkpoint",
            "bad-handover-service",
        ],
    )
    def test_registry_scenario_is_safe_and_live(self, name):
        spec = get_scenario(name)
        result = run_scenario(spec, backend="sim")
        assert result.completed, name
        record = result.record()
        assert record["adversary"] is not None
        assert check_record(spec, record) == [], name

    def test_equivocating_rbc_sender_cannot_split_honest_parties(self):
        # RBC with a Byzantine designated sender has no liveness
        # guarantee; the run settles to quiescence and the safety claim
        # is agreement among whatever was delivered.
        spec = ScenarioSpec(
            name="equivocate-rbc",
            protocol="rbc",
            weights=WeightSpec(kind="explicit", values=STAKE),
            faults=FaultSpec(byzantine=(ByzantineSpec("equivocate"),)),
        )
        result = run_scenario(spec, backend="sim")
        record = result.record()
        assert record["adversary"]["expect_liveness"] is False
        assert check_record(spec, record) == []

    def test_fault_free_record_shape_is_unchanged(self):
        # Golden-record compatibility: no adversary in the fault plan
        # means no "adversary" key materializes in the record.
        result = run_scenario(get_scenario("uniform-rbc"), backend="sim")
        assert result.record().get("adversary") is None


class TestDeterminism:
    @pytest.mark.parametrize("name", ["equivocate-smr", "share-flood-checkpoint"])
    def test_sim_records_are_byte_identical(self, name):
        spec = get_scenario(name)
        a = run_scenario(spec, backend="sim").record()
        b = run_scenario(spec, backend="sim").record()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestInprocEquivalence:
    @pytest.mark.parametrize("name", CROSS_BACKEND)
    def test_decided_values_agree_with_sim(self, name):
        spec = get_scenario(name)
        sim = run_scenario(spec, backend="sim")
        live = run_scenario(spec, backend="inproc", timeout=30)
        assert live.completed, name
        assert sim.decided == live.decided, name
        assert sim.record()["adversary"] == live.record()["adversary"]

    def test_service_handover_attack_runs_on_inproc(self):
        spec = ScenarioSpec(
            name="bad-handover-inproc",
            protocol="smr",
            weights=WeightSpec(kind="zipf", n=5, total=500, skew=1.2),
            faults=FaultSpec(byzantine=(ByzantineSpec("bad-handover"),)),
            workload=WorkloadSpec(payload_size=16, epochs=2, kind="service"),
            params=(
                ("arrival_rate", 60.0),
                ("requests", 12),
                ("slot_interval", 0.05),
                ("slots_per_epoch", 2),
            ),
        )
        result = run_scenario(spec, backend="inproc", timeout=30)
        assert result.completed
        assert check_record(spec, result.record()) == []
