"""Adversary construction: budget validation, strategy selection, and
the deterministic corruption-set choices every backend must agree on.

The paper's adversary corrupts *weight*, not node count (Section 1.1):
any party set of combined weight strictly below ``f_w * W`` may be
corrupted, and crashed parties spend the same budget.  These tests pin
that arithmetic and the per-strategy target selection -- the pieces both
backends share before a single message is sent.
"""

from fractions import Fraction

import pytest

from repro.adversary import Adversary, STRATEGIES, alt_payload, weight_split
from repro.adversary.strategies import StrategyContext
from repro.api import Committee, CommitteeValidationError
from repro.scenarios import (
    ByzantineSpec,
    FaultSpec,
    ScenarioSpec,
    WeightSpec,
)

#: the paper's running-example stake vector (skewed, n=8, W=100)
STAKE = (40, 25, 15, 10, 5, 3, 1, 1)


def _spec(strategy, protocol="smr", weights=STAKE, crashes=()):
    return ScenarioSpec(
        name="adv-test",
        protocol=protocol,
        weights=WeightSpec(kind="explicit", values=weights),
        faults=FaultSpec(
            byzantine=(ByzantineSpec(strategy),) if strategy else (),
            crashes=crashes,
        ),
    )


def _adversary(strategy, protocol="smr", weights=STAKE, crashes=()):
    spec = _spec(strategy, protocol=protocol, weights=weights, crashes=crashes)
    return Adversary(spec, Committee.from_weights(weights))


class TestBudget:
    def test_corrupted_weight_strictly_below_f_w(self):
        for name in ("equivocate", "garble-echo", "adaptive-corrupt"):
            adv = _adversary(name)
            assert adv.corrupted_weight < Fraction(1, 3), name
            assert adv.corrupted, name

    def test_combined_crash_and_corrupt_budget_rejected(self):
        # garble-echo corrupts the heaviest affordable set; adding crashes
        # that push the combined weight to f_w * W must be rejected --
        # the budget is shared, not per-fault-type.
        weights = (10, 10, 10, 10, 10, 10)
        adv = _adversary("garble-echo", weights=weights)
        corrupted_w = sum(weights[i] for i in adv.corrupted)
        assert Fraction(corrupted_w, sum(weights)) < Fraction(1, 3)
        crash = min(set(range(6)) - set(adv.corrupted))
        with pytest.raises(CommitteeValidationError):
            _adversary("garble-echo", weights=weights, crashes=(crash,))

    def test_equivocate_needs_one_affordable_party(self):
        # Egalitarian 3-party committee: every party holds exactly the
        # f_w budget, so no single corruption is affordable.
        with pytest.raises(ValueError, match="fits strictly below"):
            _adversary("equivocate", weights=(1, 1, 1))

    def test_unknown_strategy_is_rejected(self):
        with pytest.raises(ValueError, match="unknown byzantine strategy"):
            _adversary("no-such-strategy")

    def test_protocol_mismatch_is_rejected(self):
        with pytest.raises(ValueError, match="does not attack protocol"):
            _adversary("share-flood", protocol="rbc")


class TestSelection:
    def test_equivocate_picks_the_heaviest_affordable_party(self):
        # Party 0 (weight 40) exceeds the budget (100/3); party 1 (25)
        # is the heaviest that fits strictly below it.
        adv = _adversary("equivocate")
        assert adv.corrupted == frozenset({1})

    def test_rbc_sender_override_is_the_equivocator(self):
        adv = _adversary("equivocate", protocol="rbc")
        assert adv.sender_override == min(adv.corrupted)
        assert _adversary("garble-echo", protocol="rbc").sender_override is None

    def test_selection_is_deterministic(self):
        a = _adversary("adaptive-corrupt")
        b = _adversary("adaptive-corrupt")
        assert a.corrupted == b.corrupted
        assert a.describe() == b.describe()

    def test_pivot_delay_spends_no_corruption_budget(self):
        adv = _adversary("pivot-delay")
        assert adv.corrupted == frozenset()
        assert adv.expect_liveness
        strategy = adv.strategies[0]
        # The pivotal prefix's complement must not reach the echo quorum
        # (1 - f_w) * W alone; the prefix is minimal in party count.
        pivotal = strategy.pivotal()
        total = sum(STAKE)
        rest = total - sum(STAKE[p] for p in pivotal)
        assert Fraction(rest, 1) <= (1 - Fraction(1, 3)) * total
        assert pivotal == (0,)

    def test_liveness_expectation_per_strategy(self):
        assert not _adversary("equivocate", protocol="rbc").expect_liveness
        assert _adversary("equivocate", protocol="smr").expect_liveness
        assert _adversary("garble-echo", protocol="rbc").expect_liveness

    def test_describe_is_json_shaped(self):
        import json

        desc = _adversary("garble-echo").describe()
        assert json.loads(json.dumps(desc)) == desc
        assert desc["strategies"] == ["garble-echo"]
        assert desc["corrupted"] == sorted(desc["corrupted"])


class TestHelpers:
    def test_weight_split_partitions_and_balances(self):
        a, b = weight_split(STAKE, range(len(STAKE)))
        assert sorted(a + b) == list(range(len(STAKE)))
        wa, wb = sum(STAKE[i] for i in a), sum(STAKE[i] for i in b)
        # Greedy balance: the gap never exceeds the heaviest single party.
        assert abs(wa - wb) <= max(STAKE)

    def test_weight_split_is_deterministic(self):
        assert weight_split(STAKE, range(8)) == weight_split(STAKE, range(8))

    def test_alt_payload_differs_and_keeps_length(self):
        for payload in (b"", b"x", b"hello world", bytes(64)):
            alt = alt_payload(payload)
            assert alt != payload
            assert len(alt) == max(len(payload), 1)
        assert alt_payload(b"p", "a") != alt_payload(b"p", "b")

    def test_strategy_registry_covers_every_issue_strategy(self):
        assert set(STRATEGIES) == {
            "equivocate",
            "garble-echo",
            "pivot-delay",
            "adaptive-corrupt",
            "share-flood",
            "bad-handover",
        }

    def test_context_param_lookup(self):
        ctx = StrategyContext(
            committee=None,
            weights=STAKE,
            f_w=Fraction(1, 3),
            protocol="checkpoint",
            seed=7,
            params=(("flood", 3),),
        )
        assert ctx.param("flood") == 3
        assert ctx.param("missing", 9) == 9
        # Tagged RNGs are independent streams of one seed.
        assert ctx.rng("a").random() != ctx.rng("b").random()
        assert ctx.rng("a").random() == ctx.rng("a").random()
