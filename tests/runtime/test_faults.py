"""Transport-level fault injection: crash, partition, link delay."""

import asyncio

import pytest

from repro.protocols.reliable_broadcast import BroadcastParty
from repro.protocols.smr import SmrParty
from repro.runtime import Cluster, FaultController, run_cluster
from repro.runtime.faults import DeliveryDecision
from repro.sim.adversary import heaviest_under
from repro.weighted.quorum import WeightedQuorums

WEIGHTS = [40, 25, 15, 10, 5, 3, 1]
N = len(WEIGHTS)
QUORUMS = WeightedQuorums(WEIGHTS, "1/3")


class TestFaultController:
    def test_crash_drops_both_directions(self):
        faults = FaultController()
        faults.crash(2)
        assert not faults.decide(2, 0).deliver
        assert not faults.decide(0, 2).deliver
        assert faults.decide(0, 1).deliver
        assert faults.dropped_messages == 2

    def test_partition_and_heal(self):
        faults = FaultController()
        faults.partition({0, 1}, {2, 3})
        assert faults.decide(0, 1).deliver
        assert not faults.decide(0, 2).deliver
        faults.heal()
        assert faults.decide(0, 2).deliver

    def test_delays_accumulate(self):
        faults = FaultController()
        faults.delay_all(0.001)
        faults.delay_link(0, 1, 0.002)
        decision = faults.decide(0, 1)
        assert decision.deliver and decision.delay == pytest.approx(0.003)
        assert faults.decide(1, 0).delay == pytest.approx(0.001)
        assert faults.delayed_messages == 2

    def test_default_is_clean_delivery(self):
        decision = FaultController().decide(0, 1)
        assert decision == DeliveryDecision.DELIVER


class TestCrashInjection:
    def test_rbc_survives_crash_under_resilience(self):
        # Crash a sub-f_w weight set; the survivors must still deliver.
        corrupt = heaviest_under(WEIGHTS, "1/3")
        assert corrupt  # the attack is non-trivial
        live = [pid for pid in range(N) if pid not in corrupt]
        sender = live[0]
        faults = FaultController()

        def setup(cluster):
            for pid in corrupt:
                cluster.crash_node(pid)
            cluster.party(sender).broadcast_value(b"survive")

        cluster = run_cluster(
            lambda pid: BroadcastParty(pid, QUORUMS),
            N,
            faults=faults,
            setup=setup,
            stop_when=lambda c: all(
                c.party(pid).delivered == b"survive" for pid in live
            ),
        )
        for pid in corrupt:
            assert cluster.party(pid).delivered is None
        assert faults.dropped_messages > 0

    def test_smr_epoch_survives_crash(self):
        corrupt = heaviest_under(WEIGHTS, "1/3")
        live = [pid for pid in range(N) if pid not in corrupt]

        def setup(cluster):
            for pid in corrupt:
                cluster.crash_node(pid)
            for pid in live:
                cluster.party(pid).propose_batch(0, f"b{pid}".encode())

        cluster = run_cluster(
            lambda pid: SmrParty(pid, N, QUORUMS, lambda epoch: 42),
            N,
            setup=setup,
            stop_when=lambda c: all(
                len(c.party(pid).ordered_log(0)) == len(live) for pid in live
            ),
        )
        logs = {tuple(cluster.party(pid).ordered_log(0)) for pid in live}
        assert len(logs) == 1


class TestPartitionInjection:
    def test_partition_blocks_then_heal_unblocks(self):
        async def drive():
            faults = FaultController()
            async with Cluster(
                lambda pid: BroadcastParty(pid, QUORUMS), N, faults=faults
            ) as cluster:
                # Split so that no side holds an echo quorum of the weight.
                faults.partition({0, 6}, {1, 2, 3, 4, 5})
                cluster.party(0).broadcast_value(b"split")
                with pytest.raises(TimeoutError):
                    await cluster.run_until(
                        lambda: any(p.delivered for p in cluster.parties),
                        timeout=0.2,
                    )
                blocked = [p.delivered for p in cluster.parties]

                # Healing restores asynchrony: totality must now complete.
                # (Pre-partition sends were dropped, so the sender re-sends.)
                faults.heal()
                cluster.party(0)._echoed = False
                cluster.party(0).broadcast_value(b"split")
                await cluster.run_until(
                    lambda: all(p.delivered == b"split" for p in cluster.parties),
                    timeout=10.0,
                )
                return blocked, faults.dropped_messages

        blocked, dropped = asyncio.run(drive())
        assert blocked == [None] * N
        assert dropped > 0


class TestDeliveryFailures:
    def test_undecodable_frame_surfaces_instead_of_stalling(self):
        # A frame that fails to decode must fail the run loudly (and not
        # leak in_flight into a permanent non-quiescent state).
        async def drive():
            async with Cluster(
                lambda pid: BroadcastParty(pid, QUORUMS), N
            ) as cluster:
                transport = cluster.transport
                transport.in_flight += 1  # as if a peer had sent the frame
                with pytest.raises(Exception):
                    transport._deliver(0, 1, b"\x00garbage-frame")
                assert transport.failure is not None
                assert transport.quiescent  # in_flight was released
                with pytest.raises(RuntimeError, match="delivery point"):
                    await cluster.run_until(lambda: False, timeout=1.0)

        asyncio.run(drive())


class TestDelayInjection:
    def test_settle_waits_out_delayed_messages(self):
        # Quiescence must see messages sleeping in delay timers as
        # in-flight work, not as an idle cluster.
        faults = FaultController()
        faults.delay_all(0.05)

        async def drive():
            async with Cluster(
                lambda pid: BroadcastParty(pid, QUORUMS), N, faults=faults
            ) as cluster:
                cluster.party(0).broadcast_value(b"patience")
                await cluster.settle(idle_for=0.01)
                return [p.delivered for p in cluster.parties]

        assert asyncio.run(drive()) == [b"patience"] * N

    def test_delayed_links_still_deliver(self):
        faults = FaultController()
        faults.delay_all(0.005)
        faults.delay_link(0, 3, 0.02)

        cluster = run_cluster(
            lambda pid: BroadcastParty(pid, QUORUMS),
            N,
            faults=faults,
            setup=lambda c: c.party(0).broadcast_value(b"slow"),
            stop_when=lambda c: all(p.delivered == b"slow" for p in c.parties),
        )
        assert faults.delayed_messages > 0
        # Two delivery hops through >= 5ms links bound the wall clock below.
        assert cluster.metrics.elapsed_seconds >= 0.01
