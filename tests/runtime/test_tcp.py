"""TCP transport smoke tests (marked ``tcp``: real localhost sockets)."""

import asyncio

import pytest

from repro.protocols.common_coin import deterministic_coin
from repro.protocols.reliable_broadcast import BroadcastParty
from repro.protocols.smr import SmrParty
from repro.runtime import Cluster, run_cluster
from repro.weighted.quorum import NominalQuorums, WeightedQuorums

pytestmark = pytest.mark.tcp

WEIGHTS = [7, 5, 2, 1]
N = len(WEIGHTS)


_coin = deterministic_coin("tcp")


class TestTcpSmoke:
    def test_rbc_over_tcp_n4(self):
        quorums = WeightedQuorums(WEIGHTS, "1/3")
        cluster = run_cluster(
            lambda pid: BroadcastParty(pid, quorums),
            N,
            transport="tcp",
            setup=lambda c: c.party(0).broadcast_value(b"over-the-wire"),
            stop_when=lambda c: all(
                p.delivered == b"over-the-wire" for p in c.parties
            ),
        )
        # n SENDs + n^2 ECHOs + n^2 READYs, all actually serialized.
        assert cluster.metrics.by_type == {
            "RbcSend": N,
            "RbcEcho": N * N,
            "RbcReady": N * N,
        }
        assert cluster.metrics.bytes > 0
        assert cluster.metrics.elapsed_seconds > 0

    def test_smr_epoch_over_tcp_n4(self):
        quorums = NominalQuorums(n=N, t=1)
        cluster = run_cluster(
            lambda pid: SmrParty(pid, N, quorums, _coin),
            N,
            transport="tcp",
            setup=lambda c: [
                c.party(pid).propose_batch(0, f"tcp-batch-{pid}".encode())
                for pid in range(N)
            ],
            stop_when=lambda c: all(
                len(p.ordered_log(0)) == N for p in c.parties
            ),
        )
        logs = {tuple(p.ordered_log(0)) for p in cluster.parties}
        assert len(logs) == 1 and len(next(iter(logs))) == N

    def test_tcp_matches_inproc_outputs(self):
        quorums = WeightedQuorums(WEIGHTS, "1/3")

        def factory(pid):
            return BroadcastParty(pid, quorums)

        results = {}
        for transport in ("inproc", "tcp"):
            cluster = run_cluster(
                factory,
                N,
                transport=transport,
                setup=lambda c: c.party(1).broadcast_value(b"same-everywhere"),
                stop_when=lambda c: all(p.delivered for p in c.parties),
            )
            results[transport] = (
                [p.delivered for p in cluster.parties],
                cluster.metrics.bytes,
                dict(cluster.metrics.by_type),
            )
        assert results["inproc"] == results["tcp"]

    def test_listeners_close_on_stop(self):
        quorums = WeightedQuorums(WEIGHTS, "1/3")

        async def drive():
            cluster = Cluster(factory_quorums(quorums), N, transport="tcp")
            await cluster.start()
            ports = [cluster.transport.address(pid)[1] for pid in range(N)]
            assert len(set(ports)) == N  # one listener per node
            await cluster.stop()
            # After stop, dialing any port must fail.
            for port in ports:
                with pytest.raises(OSError):
                    await asyncio.open_connection("127.0.0.1", port)

        asyncio.run(drive())


def factory_quorums(quorums):
    def factory(pid):
        return BroadcastParty(pid, quorums)

    return factory
