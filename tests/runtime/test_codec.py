"""Codec round-trips for every registered protocol message type."""

import dataclasses

import pytest

from repro.codes.reed_solomon import Fragment
from repro.crypto.dleq import DleqProof
from repro.crypto.threshold_sig import SignatureShare
from repro.protocols.avid import (
    AvidDisperse,
    AvidEcho,
    AvidFragments,
    AvidRetrieveRequest,
)
from repro.protocols.checkpointing import CheckpointShare, CheckpointVote
from repro.protocols.common_coin import CoinShareMsg
from repro.protocols.ec_broadcast import EcFragment, EcRequest
from repro.protocols.reliable_broadcast import RbcEcho, RbcReady, RbcSend
from repro.protocols.smr import BatchEcho, BatchReady, BatchSend
from repro.protocols.vaba import Commit, Decide, Proposal, Vote, Vouch
from repro.runtime.codec import CodecError, CodecRegistry, FrameAssembler, default_registry

_PROOF = DleqProof(challenge=2**255 - 19, response=123456789)
_SHARE = SignatureShare(index=3, value=2**200 + 7, proof=_PROOF)

#: one representative instance of every type default_registry() knows
SAMPLES = [
    Fragment(index=5, value=1023),
    _PROOF,
    _SHARE,
    RbcSend(payload=b"hello world"),
    RbcEcho(payload=b""),
    RbcReady(payload=bytes(range(256))),
    BatchSend(epoch=0, proposer=6, payload=b"batch-0"),
    BatchEcho(epoch=3, proposer=0, payload=b"x" * 1000),
    BatchReady(epoch=2**40, proposer=1, payload=b"big epoch"),
    AvidDisperse(
        fragments=(Fragment(0, 7), Fragment(1, 9)),
        hash_list=(b"\x00" * 32, b"\xff" * 32),
        commitment=b"\xab" * 32,
        data_shards=2,
        total_shards=4,
    ),
    AvidEcho(commitment=b"\x01" * 32),
    AvidRetrieveRequest(commitment=b"\x02" * 32),
    AvidFragments(commitment=b"\x03" * 32, fragments=(Fragment(2, 4),)),
    CoinShareMsg(epoch=9, share=_SHARE),
    CheckpointVote(checkpoint=b"cp-hash"),
    CheckpointShare(checkpoint=b"cp-hash", share=_SHARE),
    EcRequest(),
    EcFragment(fragment=Fragment(11, 13)),
    Proposal(round=1, value=b"p"),
    Vote(round=2, value=b"v"),
    Commit(value=b"c"),
    Decide(value=b"d"),
    Vouch(value=b"w"),
]


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class TestRoundTrips:
    @pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__)
    def test_message_round_trip(self, registry, message):
        data = registry.encode(message)
        assert registry.decode(data) == message
        assert registry.encoded_size(message) == len(data)

    @pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__)
    def test_frame_round_trip(self, registry, message):
        assert registry.decode_frame(registry.encode_frame(message)) == message

    def test_samples_cover_every_registered_type(self, registry):
        sampled = {type(m) for m in SAMPLES}
        registered = set(registry.registered_types())
        missing = {c.__name__ for c in registered - sampled}
        assert not missing, f"add codec samples for: {sorted(missing)}"

    def test_negative_and_huge_ints(self, registry):
        reg = CodecRegistry()

        @dataclasses.dataclass(frozen=True)
        class Probe:
            a: int
            b: int

        reg.register(Probe)
        probe = Probe(a=-(2**300), b=0)
        assert reg.decode(reg.encode(probe)) == probe


class TestFrameAssembler:
    def test_byte_at_a_time_reassembly(self, registry):
        stream = b"".join(registry.encode_frame(m) for m in SAMPLES)
        assembler = FrameAssembler(registry)
        out = []
        for i in range(len(stream)):
            out.extend(assembler.feed(stream[i : i + 1]))
        assert out == SAMPLES
        assert assembler.pending_bytes == 0

    def test_partial_frame_stays_pending(self, registry):
        frame = registry.encode_frame(SAMPLES[0])
        assembler = FrameAssembler(registry)
        assert list(assembler.feed(frame[:-1])) == []
        assert assembler.pending_bytes == len(frame) - 1
        assert list(assembler.feed(frame[-1:])) == [SAMPLES[0]]


class TestErrors:
    def test_unregistered_type_rejected(self, registry):
        @dataclasses.dataclass(frozen=True)
        class Rogue:
            x: int

        with pytest.raises(CodecError, match="unregistered"):
            registry.encode(Rogue(x=1))

    def test_unknown_tag_rejected(self, registry):
        other = CodecRegistry()

        @dataclasses.dataclass(frozen=True)
        class Alien:
            x: int

        other.register(Alien)
        with pytest.raises(CodecError, match="unknown message tag"):
            registry.decode(other.encode(Alien(x=1)))

    def test_trailing_garbage_rejected(self, registry):
        data = registry.encode(SAMPLES[0])
        with pytest.raises(CodecError, match="trailing"):
            registry.decode(data + b"\x00")

    def test_duplicate_tag_rejected(self):
        reg = CodecRegistry()

        @dataclasses.dataclass(frozen=True)
        class One:
            x: int

        reg.register(One, tag="t")
        with pytest.raises(CodecError, match="already bound"):

            @dataclasses.dataclass(frozen=True)
            class Two:
                x: int

            reg.register(Two, tag="t")

    def test_non_dataclass_rejected(self):
        with pytest.raises(CodecError, match="not a dataclass"):
            CodecRegistry().register(int)

    def test_unencodable_value_rejected(self, registry):
        reg = CodecRegistry()

        @dataclasses.dataclass(frozen=True)
        class Holder:
            x: object

        reg.register(Holder)
        with pytest.raises(CodecError, match="cannot encode"):
            reg.encode(Holder(x=3.14))
