"""Codec round-trips for every registered protocol message type."""

import dataclasses

import pytest

from repro.codes.reed_solomon import BlockFragment, Fragment
from repro.crypto.dleq import DleqProof
from repro.crypto.threshold_sig import SignatureShare
from repro.protocols.avid import (
    AvidDisperse,
    AvidEcho,
    AvidFragments,
    AvidRetrieveRequest,
)
from repro.protocols.checkpointing import CheckpointShare, CheckpointVote
from repro.protocols.common_coin import CoinShareMsg
from repro.protocols.ec_broadcast import EcFragment, EcRequest
from repro.protocols.reliable_broadcast import RbcEcho, RbcReady, RbcSend
from repro.protocols.smr import BatchEcho, BatchReady, BatchSend
from repro.protocols.vaba import Commit, Decide, Proposal, Vote, Vouch
from repro.recovery.smr import StateSyncRequest, StateSyncResponse
from repro.runtime.codec import CodecError, CodecRegistry, FrameAssembler, default_registry

_PROOF = DleqProof(challenge=2**255 - 19, response=123456789)
_SHARE = SignatureShare(index=3, value=2**200 + 7, proof=_PROOF)

#: one representative instance of every type default_registry() knows
SAMPLES = [
    Fragment(index=5, value=1023),
    BlockFragment(index=7, block=bytes(range(64))),
    _PROOF,
    _SHARE,
    RbcSend(payload=b"hello world"),
    RbcEcho(payload=b""),
    RbcReady(payload=bytes(range(256))),
    BatchSend(epoch=0, proposer=6, payload=b"batch-0"),
    BatchEcho(epoch=3, proposer=0, payload=b"x" * 1000),
    BatchReady(epoch=2**40, proposer=1, payload=b"big epoch"),
    AvidDisperse(
        fragments=(BlockFragment(0, b"\x07\x08"), BlockFragment(1, b"\x09\x0a")),
        hash_list=(b"\x00" * 32, b"\xff" * 32),
        commitment=b"\xab" * 32,
        data_shards=2,
        total_shards=4,
        original_length=4,
    ),
    AvidEcho(commitment=b"\x01" * 32),
    AvidRetrieveRequest(commitment=b"\x02" * 32),
    AvidFragments(commitment=b"\x03" * 32, fragments=(BlockFragment(2, b"\x04"),)),
    CoinShareMsg(epoch=9, share=_SHARE),
    CheckpointVote(checkpoint=b"cp-hash"),
    CheckpointShare(checkpoint=b"cp-hash", share=_SHARE),
    EcRequest(),
    EcFragment(fragment=BlockFragment(11, b"\x0d" * 16)),
    Proposal(round=1, value=b"p"),
    Vote(round=2, value=b"v"),
    Commit(value=b"c"),
    Decide(value=b"d"),
    Vouch(value=b"w"),
    StateSyncRequest(requester=4),
    StateSyncResponse(
        responder=2,
        entries=((0, 1, b"payload-0"), (1, 3, b"payload-1")),
        certificates=((1, b"\x0e" * 32, b"cert-bytes"),),
    ),
]


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class TestRoundTrips:
    @pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__)
    def test_message_round_trip(self, registry, message):
        data = registry.encode(message)
        assert registry.decode(data) == message
        assert registry.encoded_size(message) == len(data)

    @pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__)
    def test_frame_round_trip(self, registry, message):
        assert registry.decode_frame(registry.encode_frame(message)) == message

    def test_samples_cover_every_registered_type(self, registry):
        sampled = {type(m) for m in SAMPLES}
        registered = set(registry.registered_types())
        missing = {c.__name__ for c in registered - sampled}
        assert not missing, f"add codec samples for: {sorted(missing)}"

    def test_negative_and_huge_ints(self, registry):
        reg = CodecRegistry()

        @dataclasses.dataclass(frozen=True)
        class Probe:
            a: int
            b: int

        reg.register(Probe)
        probe = Probe(a=-(2**300), b=0)
        assert reg.decode(reg.encode(probe)) == probe


class TestFrameAssembler:
    def test_byte_at_a_time_reassembly(self, registry):
        stream = b"".join(registry.encode_frame(m) for m in SAMPLES)
        assembler = FrameAssembler(registry)
        out = []
        for i in range(len(stream)):
            out.extend(assembler.feed(stream[i : i + 1]))
        assert out == SAMPLES
        assert assembler.pending_bytes == 0

    def test_partial_frame_stays_pending(self, registry):
        frame = registry.encode_frame(SAMPLES[0])
        assembler = FrameAssembler(registry)
        assert list(assembler.feed(frame[:-1])) == []
        assert assembler.pending_bytes == len(frame) - 1
        assert list(assembler.feed(frame[-1:])) == [SAMPLES[0]]


class TestErrors:
    def test_unregistered_type_rejected(self, registry):
        @dataclasses.dataclass(frozen=True)
        class Rogue:
            x: int

        with pytest.raises(CodecError, match="unregistered"):
            registry.encode(Rogue(x=1))

    def test_unknown_tag_rejected(self, registry):
        other = CodecRegistry()

        @dataclasses.dataclass(frozen=True)
        class Alien:
            x: int

        other.register(Alien)
        with pytest.raises(CodecError, match="unknown message tag"):
            registry.decode(other.encode(Alien(x=1)))

    def test_trailing_garbage_rejected(self, registry):
        data = registry.encode(SAMPLES[0])
        with pytest.raises(CodecError, match="trailing"):
            registry.decode(data + b"\x00")

    def test_duplicate_tag_rejected(self):
        reg = CodecRegistry()

        @dataclasses.dataclass(frozen=True)
        class One:
            x: int

        reg.register(One, tag="t")
        with pytest.raises(CodecError, match="already bound"):

            @dataclasses.dataclass(frozen=True)
            class Two:
                x: int

            reg.register(Two, tag="t")

    def test_non_dataclass_rejected(self):
        with pytest.raises(CodecError, match="not a dataclass"):
            CodecRegistry().register(int)

    def test_unencodable_value_rejected(self, registry):
        reg = CodecRegistry()

        @dataclasses.dataclass(frozen=True)
        class Holder:
            x: object

        reg.register(Holder)
        with pytest.raises(CodecError, match="cannot encode"):
            reg.encode(Holder(x=3.14))


class TestBytesFastPath:
    """Fuzz round-trips through the codec's zero-copy bytes fast path."""

    @pytest.mark.parametrize("seed", range(12))
    def test_block_fragment_fuzz_round_trip(self, registry, seed):
        import random

        rng = random.Random(seed)
        fragments = tuple(
            BlockFragment(index=rng.randrange(1 << 16), block=rng.randbytes(rng.randrange(0, 2048)))
            for _ in range(rng.randrange(1, 8))
        )
        message = AvidFragments(commitment=rng.randbytes(32), fragments=fragments)
        data = registry.encode(message)
        assert registry.decode(data) == message
        assert registry.decode_frame(registry.encode_frame(message)) == message

    @pytest.mark.parametrize("seed", range(6))
    def test_streamed_blocks_reassemble(self, registry, seed):
        """Large block payloads cut at arbitrary chunk boundaries decode
        straight out of the assembler's buffer."""
        import random

        rng = random.Random(100 + seed)
        messages = [
            AvidFragments(
                commitment=rng.randbytes(32),
                fragments=(BlockFragment(i, rng.randbytes(1024)),),
            )
            for i in range(5)
        ]
        stream = b"".join(registry.encode_frame(m) for m in messages)
        assembler = FrameAssembler(registry)
        out = []
        pos = 0
        while pos < len(stream):
            step = rng.randrange(1, 700)
            out.extend(assembler.feed(stream[pos : pos + step]))
            pos += step
        assert out == messages
        assert assembler.pending_bytes == 0

    def test_encode_frame_matches_legacy_framing(self, registry):
        from repro.runtime.codec import frame

        for message in SAMPLES:
            assert registry.encode_frame(message) == frame(registry.encode(message))


class TestSingleEncodePerSend:
    """The transports must encode each message exactly once per send --
    the byte metric comes from that same encode (no metering re-encode)."""

    def _counting_registry(self):
        registry = default_registry()
        counts = {"encode": 0}
        original_body = registry._encode_body

        def counted_body(message, out):
            counts["encode"] += 1
            return original_body(message, out)

        registry._encode_body = counted_body
        return registry, counts

    def test_inproc_send_encodes_once(self):
        import asyncio

        from repro.protocols.reliable_broadcast import RbcSend
        from repro.runtime.transport import InProcTransport

        registry, counts = self._counting_registry()
        recorded = []

        async def drive():
            transport = InProcTransport(
                registry, record=lambda name, size: recorded.append((name, size))
            )
            got = []
            transport.bind(0, lambda src, m: got.append(m))
            transport.bind(1, lambda src, m: got.append(m))
            await transport.start()
            message = RbcSend(payload=b"x" * 512)
            sent = await transport.send(0, 1, message)
            while not got:
                await asyncio.sleep(0.001)
            await transport.stop()
            return got, sent

        got, sent = asyncio.run(drive())
        # one encode for the send -- nested dataclasses would add to the
        # count only if the message contained any, RbcSend does not
        assert counts["encode"] == 1
        assert recorded == [("RbcSend", sent)]

    def test_tcp_send_encodes_once(self):
        import asyncio

        from repro.protocols.reliable_broadcast import RbcSend
        from repro.runtime.transport import TcpTransport

        registry, counts = self._counting_registry()
        recorded = []

        async def drive():
            transport = TcpTransport(
                registry, record=lambda name, size: recorded.append((name, size))
            )
            got = []
            transport.bind(0, lambda src, m: got.append(m))
            transport.bind(1, lambda src, m: got.append(m))
            await transport.start()
            message = RbcSend(payload=b"y" * 512)
            sent = await transport.send(0, 1, message)
            for _ in range(2000):
                if got:
                    break
                await asyncio.sleep(0.001)
            await transport.stop()
            return got, sent

        got, sent = asyncio.run(drive())
        assert counts["encode"] == 1
        assert got == [RbcSend(payload=b"y" * 512)]
        assert recorded == [("RbcSend", sent)]


TestSingleEncodePerSend.test_tcp_send_encodes_once = pytest.mark.tcp(
    TestSingleEncodePerSend.test_tcp_send_encodes_once
)


class TestMalformedFrames:
    def test_bad_frame_consumed_stream_recovers(self, registry):
        """One undecodable frame raises once; later valid frames still
        deliver (regression: the bad frame used to stay buffered and
        re-raise on every subsequent feed)."""
        bad = b"\x00\x00\x00\x03\xff\xff\xff"
        good = registry.encode_frame(SAMPLES[0])
        assembler = FrameAssembler(registry)
        with pytest.raises(CodecError):
            list(assembler.feed(bad))
        assert assembler.pending_bytes == 0
        assert list(assembler.feed(good)) == [SAMPLES[0]]
