"""Live InProc runtime delivers the same protocol outputs as the simulator.

The acceptance bar for the second execution backend: on identical inputs
(weights, payloads, coin), weighted Bracha RBC and an SMR epoch must
produce outputs *identical* to the discrete-event sim -- same delivered
payloads, same ordered logs, and (because these protocols send each
phase message exactly once per party) the same per-type message counts.
"""

import asyncio

from repro.protocols.common_coin import deterministic_coin
from repro.protocols.reliable_broadcast import BroadcastParty
from repro.protocols.smr import SmrParty
from repro.runtime import Cluster, run_cluster
from repro.sim import build_world
from repro.weighted.quorum import NominalQuorums, WeightedQuorums

WEIGHTS = [40, 25, 15, 10, 5, 3, 1]
N = len(WEIGHTS)
PAYLOAD = b"swiper-live-payload"


_coin = deterministic_coin("eq")


def _sim_rbc(quorums):
    world = build_world(lambda pid: BroadcastParty(pid, quorums), N, seed=7)
    world.party(0).broadcast_value(PAYLOAD)
    world.run()
    return world


def _runtime_rbc(quorums):
    return run_cluster(
        lambda pid: BroadcastParty(pid, quorums),
        N,
        transport="inproc",
        setup=lambda c: c.party(0).broadcast_value(PAYLOAD),
        stop_when=lambda c: all(p.delivered is not None for p in c.parties),
    )


class TestRbcEquivalence:
    def test_weighted_rbc_same_outputs_as_sim(self):
        quorums = WeightedQuorums(WEIGHTS, "1/3")
        world = _sim_rbc(quorums)
        cluster = _runtime_rbc(quorums)
        assert [p.delivered for p in cluster.parties] == [
            world.party(pid).delivered for pid in range(N)
        ]
        assert all(p.delivered == PAYLOAD for p in cluster.parties)

    def test_weighted_rbc_same_message_counts_as_sim(self):
        quorums = WeightedQuorums(WEIGHTS, "1/3")
        world = _sim_rbc(quorums)
        cluster = _runtime_rbc(quorums)
        assert dict(cluster.metrics.by_type) == dict(world.metrics.by_type)
        assert cluster.metrics.messages == world.metrics.messages

    def test_nominal_rbc_same_outputs_as_sim(self):
        quorums = NominalQuorums(n=N, t=2)
        world = _sim_rbc(quorums)
        cluster = _runtime_rbc(quorums)
        assert [p.delivered for p in cluster.parties] == [
            world.party(pid).delivered for pid in range(N)
        ]


class TestSmrEquivalence:
    def _payloads(self, epoch):
        return {pid: f"e{epoch}-p{pid}".encode() for pid in range(N)}

    def test_smr_epoch_same_log_as_sim(self):
        quorums = WeightedQuorums(WEIGHTS, "1/3")
        payloads = self._payloads(0)

        world = build_world(
            lambda pid: SmrParty(pid, N, quorums, _coin), N, seed=11
        )
        for pid in range(N):
            world.party(pid).propose_batch(0, payloads[pid])
        world.run()

        cluster = run_cluster(
            lambda pid: SmrParty(pid, N, quorums, _coin),
            N,
            transport="inproc",
            setup=lambda c: [
                c.party(pid).propose_batch(0, payloads[pid]) for pid in range(N)
            ],
            stop_when=lambda c: all(
                len(p.ordered_log(0)) == N for p in c.parties
            ),
        )

        sim_log = world.party(0).ordered_log(0)
        assert len(sim_log) == N
        for pid in range(N):
            assert cluster.party(pid).ordered_log(0) == sim_log
        assert all(p.epoch_closed(0) for p in cluster.parties)

    def test_smr_epoch_same_message_counts_as_sim(self):
        quorums = WeightedQuorums(WEIGHTS, "1/3")
        payloads = self._payloads(1)

        world = build_world(
            lambda pid: SmrParty(pid, N, quorums, _coin), N, seed=13
        )
        for pid in range(N):
            world.party(pid).propose_batch(1, payloads[pid])
        world.run()

        cluster = run_cluster(
            lambda pid: SmrParty(pid, N, quorums, _coin),
            N,
            transport="inproc",
            setup=lambda c: [
                c.party(pid).propose_batch(1, payloads[pid]) for pid in range(N)
            ],
            stop_when=lambda c: all(
                len(p.ordered_log(1)) == N for p in c.parties
            ),
        )
        assert dict(cluster.metrics.by_type) == dict(world.metrics.by_type)


class TestClusterApi:
    def test_async_context_manager(self):
        quorums = WeightedQuorums(WEIGHTS, "1/3")

        async def drive():
            async with Cluster(
                lambda pid: BroadcastParty(pid, quorums), N
            ) as cluster:
                cluster.party(0).broadcast_value(b"ctx")
                await cluster.run_until(
                    lambda: all(p.delivered == b"ctx" for p in cluster.parties),
                    phase="deliver",
                )
                return cluster

        cluster = asyncio.run(drive())
        assert cluster.metrics.phase_seconds["deliver"] > 0
        assert cluster.total_counter("deliveries") == N

    def test_settle_reaches_quiescence(self):
        quorums = WeightedQuorums(WEIGHTS, "1/3")

        async def drive():
            async with Cluster(
                lambda pid: BroadcastParty(pid, quorums), N
            ) as cluster:
                cluster.party(0).broadcast_value(b"quiesce")
                await cluster.settle()
                return [p.delivered for p in cluster.parties]

        assert asyncio.run(drive()) == [b"quiesce"] * N

    def test_run_until_timeout_reports_backlog(self):
        quorums = WeightedQuorums(WEIGHTS, "1/3")

        async def drive():
            async with Cluster(
                lambda pid: BroadcastParty(pid, quorums), N
            ) as cluster:
                try:
                    await cluster.run_until(lambda: False, timeout=0.05)
                except TimeoutError as exc:
                    return str(exc)
                return None

        message = asyncio.run(drive())
        assert message is not None and "stop condition" in message

    def test_pump_failures_surface_instead_of_stalling(self):
        # Sending an unregistered message type must fail the run loudly
        # (CodecError chained), not hang until the stop-condition timeout.
        from dataclasses import dataclass

        from repro.runtime.codec import CodecError

        @dataclass(frozen=True)
        class Unregistered:
            payload: bytes

        quorums = WeightedQuorums(WEIGHTS, "1/3")

        async def drive():
            async with Cluster(
                lambda pid: BroadcastParty(pid, quorums), N
            ) as cluster:
                cluster.party(0).broadcast(Unregistered(b"boom"))
                await cluster.run_until(lambda: False, timeout=5.0)

        try:
            asyncio.run(drive())
        except RuntimeError as exc:
            assert isinstance(exc.__cause__, CodecError)
        else:
            raise AssertionError("expected the codec failure to surface")

    def test_unknown_transport_rejected(self):
        quorums = WeightedQuorums(WEIGHTS, "1/3")
        try:
            Cluster(lambda pid: BroadcastParty(pid, quorums), N, transport="carrier-pigeon")
        except ValueError as exc:
            assert "unknown transport" in str(exc)
        else:
            raise AssertionError("expected ValueError")
