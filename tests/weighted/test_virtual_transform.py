"""Tests for virtual-user maps, the transformations, and the tight gate."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import WeightRestriction, solve
from repro.sim.adversary import most_tickets_under
from repro.weighted.tight import TightGate
from repro.weighted.transform import (
    black_box_setup,
    blunt_setup,
    qualification_setup,
)
from repro.weighted.virtual import VirtualUserMap

WEIGHTS = [40, 25, 15, 10, 5, 3, 1, 1]


class TestVirtualUserMap:
    def test_ids_partition(self):
        vmap = VirtualUserMap([2, 0, 3, 1])
        assert list(vmap.virtual_ids(0)) == [0, 1]
        assert list(vmap.virtual_ids(1)) == []
        assert list(vmap.virtual_ids(2)) == [2, 3, 4]
        assert list(vmap.virtual_ids(3)) == [5]
        assert vmap.total_virtual == 6

    def test_owner_inverse(self):
        vmap = VirtualUserMap([2, 0, 3, 1])
        for party in range(4):
            for vid in vmap.virtual_ids(party):
                assert vmap.owner(vid) == party

    def test_owner_out_of_range(self):
        vmap = VirtualUserMap([1, 1])
        with pytest.raises(IndexError):
            vmap.owner(2)

    def test_corrupted_accounting(self):
        vmap = VirtualUserMap([2, 0, 3, 1])
        assert vmap.corrupted_virtual({0, 3}) == {0, 1, 5}
        assert vmap.corrupted_fraction({0, 3}) == 0.5

    def test_parties_with_tickets(self):
        vmap = VirtualUserMap([2, 0, 3, 0])
        assert vmap.parties_with_tickets() == [0, 2]

    @settings(max_examples=40, deadline=None)
    @given(tickets=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=12))
    def test_property_bijection(self, tickets):
        vmap = VirtualUserMap(tickets)
        seen = set()
        for party in range(len(tickets)):
            ids = set(vmap.virtual_ids(party))
            assert not ids & seen
            seen |= ids
            for vid in ids:
                assert vmap.owner(vid) == party
        assert seen == set(range(vmap.total_virtual))


class TestBluntSetup:
    def test_threshold_formula(self):
        setup = blunt_setup(WEIGHTS, "1/3", "1/2")
        assert setup.threshold == math.ceil(Fraction(1, 2) * setup.total_virtual)

    def test_rejects_large_alpha_n(self):
        with pytest.raises(ValueError):
            blunt_setup(WEIGHTS, "1/3", "2/3")

    def test_adversary_excluded_honest_included(self):
        """The two blunt properties hold against the worst ticket-greedy
        adversary."""
        setup = blunt_setup(WEIGHTS, "1/3", "1/2")
        tickets = setup.result.assignment.to_list()
        corrupt = most_tickets_under(WEIGHTS, tickets, "1/3")
        corrupt_tickets = sum(tickets[i] for i in corrupt)
        honest_tickets = setup.total_virtual - corrupt_tickets
        assert corrupt_tickets < setup.threshold
        assert honest_tickets >= setup.threshold


class TestBlackBoxSetup:
    def test_parameters(self):
        setup = black_box_setup(WEIGHTS, "1/3", "1/12")
        assert setup.f_n == Fraction(1, 3)
        assert setup.f_w == Fraction(1, 4)

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            black_box_setup(WEIGHTS, "1/3", "1/2")
        with pytest.raises(ValueError):
            black_box_setup(WEIGHTS, "1/3", "0")

    def test_nominal_fault_budget_strict(self):
        setup = black_box_setup(WEIGHTS, "1/3", "1/12")
        t = setup.nominal_fault_budget()
        assert Fraction(t) < setup.f_n * setup.total_virtual
        assert Fraction(t + 1) >= setup.f_n * setup.total_virtual

    def test_adversary_below_nominal_resilience(self):
        """Corrupt weight < f_w implies corrupt virtual users < f_n * T --
        the Section 4.4 invariant the black-box transform needs."""
        setup = black_box_setup(WEIGHTS, "1/3", "1/12")
        tickets = setup.result.assignment.to_list()
        corrupt = most_tickets_under(WEIGHTS, tickets, setup.f_w)
        frac = setup.vmap.corrupted_fraction(corrupt)
        assert frac < float(setup.f_n)


class TestQualificationSetup:
    def test_layout(self):
        setup = qualification_setup(WEIGHTS, "1/3", "1/4")
        assert setup.total_shards == setup.result.total_tickets
        assert setup.data_shards == math.ceil(
            Fraction(1, 4) * setup.total_shards
        )
        assert 0 < setup.data_shards <= setup.total_shards

    def test_qualified_sets_can_reconstruct(self):
        """Any subset heavier than beta_w holds >= data_shards fragments."""
        from itertools import combinations

        setup = qualification_setup(WEIGHTS, "1/3", "1/4")
        tickets = setup.result.assignment.to_list()
        total_w = sum(WEIGHTS)
        for r in range(len(WEIGHTS) + 1):
            for combo in combinations(range(len(WEIGHTS)), r):
                if sum(WEIGHTS[i] for i in combo) * 3 > total_w:  # > 1/3
                    held = sum(tickets[i] for i in combo)
                    assert held >= setup.data_shards

    def test_rate_close_to_beta_n(self):
        setup = qualification_setup(WEIGHTS, "1/3", "1/4")
        assert setup.rate >= Fraction(1, 4)


class TestTightGate:
    def test_opens_above_threshold(self):
        gate = TightGate([40, 25, 15, 10, 5, 3, 1, 1], "1/2")
        assert not gate.add_vote(0)  # 40/100
        assert gate.add_vote(1)  # 65/100 > 1/2
        assert gate.open

    def test_strictly_above(self):
        gate = TightGate([1, 1], "1/2")
        assert not gate.add_vote(0)  # exactly 1/2
        assert gate.add_vote(1)

    def test_idempotent_votes(self):
        gate = TightGate([10, 1], "1/2")
        gate.add_vote(1)
        gate.add_vote(1)
        assert gate.voted_weight == 1
        assert not gate.open

    def test_missing_weight(self):
        gate = TightGate([2, 2], "1/2")
        assert gate.missing_weight() == 2
        gate.add_vote(0)
        assert gate.missing_weight() == 0  # 2 == threshold; need strictly more
        assert not gate.open
        gate.add_vote(1)
        assert gate.open

    def test_unknown_voter(self):
        gate = TightGate([1, 1], "1/2")
        with pytest.raises(IndexError):
            gate.add_vote(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TightGate([1, 1], "0")
