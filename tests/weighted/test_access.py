"""Tests for access/adversary structures and bluntness (Definition 4.1)."""

from fractions import Fraction

import pytest

from repro import WeightRestriction, solve
from repro.weighted.access import (
    NominalThresholdAccess,
    TicketThresholdAccess,
    WeightedAdversaryStructure,
    WeightedThresholdAccess,
    is_blunt_for,
)


class TestNominalThresholdAccess:
    def test_contains(self):
        acc = NominalThresholdAccess(9, "1/3")
        assert not acc.contains(range(3))
        assert acc.contains(range(4))

    def test_min_size(self):
        assert NominalThresholdAccess(9, "1/3").min_size == 4
        assert NominalThresholdAccess(4, "1/2").min_size == 3

    def test_duplicates_ignored(self):
        acc = NominalThresholdAccess(9, "1/3")
        assert not acc.contains([1, 1, 1, 1])

    def test_validation(self):
        with pytest.raises(ValueError):
            NominalThresholdAccess(0, "1/3")
        with pytest.raises(ValueError):
            NominalThresholdAccess(5, "0")


class TestWeightedThresholdAccess:
    def test_contains_by_weight(self):
        acc = WeightedThresholdAccess([10, 1, 1], "1/2")
        assert acc.contains([0])  # 10/12 > 1/2
        assert not acc.contains([1, 2])  # 2/12

    def test_boundary_is_strict(self):
        acc = WeightedThresholdAccess([1, 1], "1/2")
        assert not acc.contains([0])  # exactly 1/2, not >


class TestTicketThresholdAccess:
    def test_threshold_is_ceiling(self):
        acc = TicketThresholdAccess([2, 1, 0], "1/2")
        assert acc.threshold == 2  # ceil(1.5)
        assert acc.contains([0])
        assert not acc.contains([1, 2])

    def test_integer_alpha_total(self):
        acc = TicketThresholdAccess([2, 2], "1/2")
        assert acc.threshold == 2

    def test_empty_assignment_rejected(self):
        with pytest.raises(ValueError):
            TicketThresholdAccess([0, 0], "1/2")


class TestAdversaryStructure:
    def test_corruptible_is_strict(self):
        adv = WeightedAdversaryStructure([1, 1, 1], "1/3")
        assert adv.corruptible([])
        assert not adv.corruptible([0])  # exactly 1/3, not <


class TestBluntness:
    def test_theorem_4_2_produces_blunt_structures(self):
        """Solving WR(f_w, alpha_n) yields a ticket access structure that
        is blunt w.r.t. the weighted adversary structure -- Theorem 4.2."""
        weights = [40, 25, 15, 10, 5, 3, 1, 1]
        for alpha_n in ("3/8", "1/2"):
            result = solve(WeightRestriction("1/3", alpha_n), weights)
            access = TicketThresholdAccess(result.assignment.to_list(), alpha_n)
            adversary = WeightedAdversaryStructure(weights, "1/3")
            assert is_blunt_for(access, adversary, n=len(weights))

    def test_non_blunt_detected(self):
        # All tickets on one light party: that party alone is corruptible
        # yet in the access structure.
        weights = [1, 100]
        access = TicketThresholdAccess([1, 0], "1/2")
        adversary = WeightedAdversaryStructure(weights, "1/3")
        assert not is_blunt_for(access, adversary, n=2)

    def test_size_limit(self):
        access = TicketThresholdAccess([1] * 17, "1/2")
        adversary = WeightedAdversaryStructure([1] * 17, "1/3")
        with pytest.raises(ValueError):
            is_blunt_for(access, adversary, n=17)
