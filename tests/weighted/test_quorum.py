"""Tests for nominal and weighted quorum policies."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.weighted.quorum import NominalQuorums, WeightedQuorums


class TestNominalQuorums:
    def test_validation(self):
        with pytest.raises(ValueError):
            NominalQuorums(n=6, t=2)  # needs n >= 3t+1

    def test_thresholds(self):
        q = NominalQuorums(n=7, t=2)
        assert q.echo_quorum(range(5))
        assert not q.echo_quorum(range(4))
        assert q.ready_amplify(range(3))
        assert not q.ready_amplify(range(2))
        assert q.deliver_quorum(range(5))
        assert q.storage_quorum(range(5))
        assert not q.storage_quorum(range(4))

    def test_duplicates_ignored(self):
        q = NominalQuorums(n=4, t=1)
        assert not q.ready_amplify([1, 1, 1])

    def test_quorum_intersection_in_honest_party(self):
        """Any two echo quorums intersect in at least one honest party --
        the safety backbone of Bracha broadcast."""
        n, t = 7, 2
        q = NominalQuorums(n=n, t=t)
        size = n - t
        # Two quorums of size n-t intersect in >= n - 2t = t+1 parties,
        # more than the t corrupt ones.
        assert 2 * size - n >= t + 1


class TestWeightedQuorums:
    WEIGHTS = [40, 25, 15, 10, 5, 3, 1, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedQuorums(self.WEIGHTS, "1/2")
        with pytest.raises(ValueError):
            WeightedQuorums(self.WEIGHTS, "0")

    def test_echo_threshold(self):
        q = WeightedQuorums(self.WEIGHTS, "1/3")
        # total = 100; echo needs weight > 66.67: {0,1,2} = 80.
        assert q.echo_quorum([0, 1, 2])
        assert not q.echo_quorum([0, 1])  # 65

    def test_ready_amplify(self):
        q = WeightedQuorums(self.WEIGHTS, "1/3")
        assert q.ready_amplify([0])  # 40 > 33.3
        assert not q.ready_amplify([2, 3, 4])  # 30

    def test_storage_quorum(self):
        q = WeightedQuorums(self.WEIGHTS, "1/3")
        assert q.storage_quorum([0, 1, 2])  # 80 > 66.7
        assert not q.storage_quorum([1, 2, 3, 4, 5, 6, 7])  # 60

    @settings(max_examples=40, deadline=None)
    @given(
        weights=st.lists(st.integers(min_value=1, max_value=50), min_size=2, max_size=9),
        data=st.data(),
    )
    def test_property_weighted_quorum_intersection(self, weights, data):
        """Two echo quorums (> (1-f)W each) overlap in weight > (1-2f)W >
        f W, i.e. in at least one honest party."""
        q = WeightedQuorums(weights, "1/3")
        n = len(weights)
        a = set(data.draw(st.lists(st.integers(0, n - 1), max_size=n)))
        b = set(data.draw(st.lists(st.integers(0, n - 1), max_size=n)))
        if q.echo_quorum(a) and q.echo_quorum(b):
            overlap_weight = q.weight(a & b)
            assert overlap_weight > q.f_w * q.total - (q.total - q.weight(a | b))
            # Direct statement: the intersection outweighs any corruptible set.
            assert overlap_weight > (1 - 2 * q.f_w) * q.total
