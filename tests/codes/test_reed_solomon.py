"""Tests for Reed-Solomon encoding, erasure and error decoding."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.gf2m import GF256, GF65536
from repro.codes.reed_solomon import (
    DecodingFailure,
    Fragment,
    ReedSolomon,
    min_message_symbols,
)


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ReedSolomon(k=5, m=4)
        with pytest.raises(ValueError):
            ReedSolomon(k=0, m=4)
        with pytest.raises(ValueError):
            ReedSolomon(k=1, m=256, field=GF256)

    def test_field_autoselect(self):
        assert ReedSolomon(k=2, m=100).field is GF256
        assert ReedSolomon(k=2, m=300).field is GF65536

    def test_rate(self):
        assert ReedSolomon(k=1, m=4).rate == 0.25

    def test_min_message_symbols(self):
        # k * log2(m) lower bound from Section 5.1.
        assert min_message_symbols(4, 16) == 16
        assert min_message_symbols(3, 2) == 3


class TestErasureDecoding:
    def test_roundtrip_any_k_fragments(self):
        rng = random.Random(0)
        rs = ReedSolomon(k=4, m=10)
        data = [rng.randrange(256) for _ in range(4)]
        fragments = rs.encode(data)
        for _ in range(10):
            subset = rng.sample(fragments, 4)
            assert rs.decode_erasures(subset) == data

    def test_insufficient_fragments(self):
        rs = ReedSolomon(k=3, m=5)
        fragments = rs.encode([1, 2, 3])
        with pytest.raises(DecodingFailure):
            rs.decode_erasures(fragments[:2])

    def test_duplicates_do_not_count(self):
        rs = ReedSolomon(k=3, m=5)
        fragments = rs.encode([1, 2, 3])
        with pytest.raises(DecodingFailure):
            rs.decode_erasures([fragments[0]] * 3)

    def test_wrong_data_length(self):
        rs = ReedSolomon(k=3, m=5)
        with pytest.raises(ValueError):
            rs.encode([1, 2])

    def test_symbol_range_validated(self):
        rs = ReedSolomon(k=2, m=4, field=GF256)
        with pytest.raises(ValueError):
            rs.encode([1, 256])

    def test_zero_data(self):
        rs = ReedSolomon(k=3, m=6)
        fragments = rs.encode([0, 0, 0])
        assert all(f.value == 0 for f in fragments)
        assert rs.decode_erasures(fragments[2:5]) == [0, 0, 0]

    @settings(max_examples=30, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=8),
        extra=st.integers(min_value=0, max_value=8),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_property_roundtrip(self, k, extra, seed):
        rng = random.Random(seed)
        m = k + extra
        rs = ReedSolomon(k=k, m=m)
        data = [rng.randrange(256) for _ in range(k)]
        fragments = rs.encode(data)
        subset = rng.sample(fragments, k)
        assert rs.decode_erasures(subset) == data


class TestErrorDecoding:
    def _corrupt(self, fragments, indices):
        out = list(fragments)
        for i in indices:
            out[i] = Fragment(index=out[i].index, value=out[i].value ^ 0xA5 or 1)
        return out

    def test_corrects_up_to_budget(self):
        rng = random.Random(1)
        rs = ReedSolomon(k=4, m=12)
        data = [rng.randrange(256) for _ in range(4)]
        fragments = rs.encode(data)
        for e in range(5):  # (12-4)//2 == 4 errors max
            received = self._corrupt(fragments, list(range(e)))
            if e <= 4:
                assert rs.decode_errors(received) == data

    def test_too_many_errors_detected(self):
        rng = random.Random(2)
        rs = ReedSolomon(k=4, m=12)
        data = [rng.randrange(256) for _ in range(4)]
        fragments = rs.encode(data)
        received = self._corrupt(fragments, list(range(5)))
        with pytest.raises(DecodingFailure):
            rs.decode_errors(received)

    def test_no_errors_is_fine(self):
        rng = random.Random(3)
        rs = ReedSolomon(k=5, m=9)
        data = [rng.randrange(256) for _ in range(5)]
        assert rs.decode_errors(rs.encode(data)) == data

    def test_needs_k_fragments(self):
        rs = ReedSolomon(k=4, m=8)
        fragments = rs.encode([1, 2, 3, 4])
        with pytest.raises(DecodingFailure):
            rs.decode_errors(fragments[:3])

    def test_partial_reception_with_errors(self):
        """The online-error-correction case: r < m fragments received,
        e <= (r - k) / 2 of them wrong."""
        rng = random.Random(4)
        rs = ReedSolomon(k=3, m=12)
        data = [rng.randrange(256) for _ in range(3)]
        fragments = rs.encode(data)
        received = rng.sample(fragments, 7)  # r=7 -> e up to 2
        received = self._corrupt(received, [0, 1])
        assert rs.decode_errors(received) == data

    @settings(max_examples=25, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=6),
        e=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_property_error_correction(self, k, e, seed):
        rng = random.Random(seed)
        m = k + 2 * e + rng.randrange(3)
        if m > 60:
            return
        rs = ReedSolomon(k=k, m=m)
        data = [rng.randrange(256) for _ in range(k)]
        fragments = rs.encode(data)
        received = self._corrupt(fragments, rng.sample(range(m), e))
        assert rs.decode_errors(received) == data


class TestLargeField:
    def test_gf65536_roundtrip(self):
        rng = random.Random(5)
        rs = ReedSolomon(k=6, m=400)
        data = [rng.randrange(65536) for _ in range(6)]
        fragments = rs.encode(data)
        subset = rng.sample(fragments, 6)
        assert rs.decode_erasures(subset) == data

    def test_gf65536_error_correction(self):
        rng = random.Random(6)
        rs = ReedSolomon(k=3, m=300)
        data = [rng.randrange(65536) for _ in range(3)]
        fragments = rs.encode(data)
        received = rng.sample(fragments, 9)
        received[0] = Fragment(received[0].index, received[0].value ^ 0xFFFF or 1)
        received[1] = Fragment(received[1].index, received[1].value ^ 0x1234 or 1)
        assert rs.decode_errors(received) == data


class TestByteInterface:
    @settings(max_examples=20, deadline=None)
    @given(
        blob=st.binary(min_size=0, max_size=200),
        k=st.integers(min_value=1, max_value=6),
    )
    def test_property_bytes_roundtrip(self, blob, k):
        rs = ReedSolomon(k=k, m=k + 4)
        blocks, length = rs.encode_bytes(blob)
        assert rs.decode_bytes(blocks, length) == blob

    def test_bytes_roundtrip_gf65536(self):
        rs = ReedSolomon(k=4, m=260)
        blob = bytes(range(256)) * 2
        blocks, length = rs.encode_bytes(blob)
        trimmed = [list(b)[:4] for b in blocks]
        assert rs.decode_bytes(trimmed, length) == blob

    def test_work_counter_increases(self):
        rs = ReedSolomon(k=3, m=9)
        before = rs.work_counter
        rs.encode([1, 2, 3])
        assert rs.work_counter > before
