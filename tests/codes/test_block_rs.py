"""Property tests: the vectorized block engine against the per-symbol
reference oracle.

The seed's per-symbol path (``encode``/``encode_bytes``,
``decode_erasures``, ``decode_errors``) is kept precisely to serve as
the correctness oracle here: on randomized ``(k, m, payload)`` draws the
block-striped engine must produce byte-identical fragments
(non-systematic mode) and recover byte-identical payloads through both
erasure and error decoding, including the corruption patterns that force
the fold-locate fast path into its per-stripe fallback.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.gf2m import GF256, GF65536
from repro.codes.reed_solomon import (
    BlockFragment,
    DecodingFailure,
    ReedSolomon,
)


def _oracle_blocks(rs: ReedSolomon, payload: bytes) -> list[bytes]:
    """Fragment blocks derived purely from the per-symbol oracle."""
    chunks, _ = rs.encode_bytes(payload)
    sb = rs.field.width // 8
    return [
        b"".join(chunk[j].value.to_bytes(sb, "big") for chunk in chunks)
        for j in range(rs.m)
    ]


class TestEncodeEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=10),
        extra=st.integers(min_value=0, max_value=12),
        payload=st.binary(min_size=0, max_size=300),
    )
    def test_blocks_match_per_symbol_oracle(self, k, extra, payload):
        rs = ReedSolomon(k=k, m=k + extra)
        assert rs.encode_blocks(payload) == _oracle_blocks(rs, payload)

    def test_blocks_match_oracle_gf65536(self):
        rng = random.Random(0)
        rs = ReedSolomon(k=5, m=270)
        assert rs.field is GF65536
        payload = rng.randbytes(123)
        assert rs.encode_blocks(payload) == _oracle_blocks(rs, payload)

    def test_systematic_prefix_is_the_data(self):
        rng = random.Random(1)
        rs = ReedSolomon(k=4, m=9)
        payload = rng.randbytes(40)
        blocks = rs.encode_blocks(payload, systematic=True)
        recovered = rs.decode_erasures_blocks(
            {j: blocks[j] for j in range(rs.k)}, len(payload), systematic=True
        )
        assert recovered == payload
        # the first k blocks really are the striped payload shards
        assert blocks[: rs.k] == rs._split_shards(payload)

    def test_empty_payload(self):
        rs = ReedSolomon(k=3, m=7)
        blocks = rs.encode_blocks(b"")
        assert blocks == [b""] * 7
        assert rs.decode_erasures_blocks({0: b"", 1: b"", 2: b""}, 0) == b""
        assert rs.decode_errors_blocks({i: b"" for i in range(5)}, 0) == b""


class TestErasureEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=10),
        extra=st.integers(min_value=0, max_value=12),
        payload=st.binary(min_size=1, max_size=300),
        seed=st.integers(min_value=0, max_value=10**6),
        systematic=st.booleans(),
    )
    def test_any_k_blocks_reconstruct(self, k, extra, payload, seed, systematic):
        rng = random.Random(seed)
        rs = ReedSolomon(k=k, m=k + extra)
        blocks = rs.encode_blocks(payload, systematic=systematic)
        subset = rng.sample(range(rs.m), k)
        got = rs.decode_erasures_blocks(
            {j: blocks[j] for j in subset}, len(payload), systematic=systematic
        )
        assert got == payload

    def test_matches_scalar_decode_exactly(self):
        """Same chosen index set -> byte-identical output as the oracle."""
        rng = random.Random(2)
        rs = ReedSolomon(k=4, m=11)
        payload = rng.randbytes(64)
        blocks = rs.encode_blocks(payload)
        chunks, length = rs.encode_bytes(payload)
        subset = rng.sample(range(rs.m), 6)
        via_blocks = rs.decode_erasures_blocks(
            [(j, blocks[j]) for j in subset], length
        )
        via_oracle = rs.decode_bytes(
            [[c[j] for j in subset] for c in chunks], length
        )
        assert via_blocks == via_oracle == payload

    def test_insufficient_blocks(self):
        rs = ReedSolomon(k=3, m=6)
        blocks = rs.encode_blocks(b"abcdef")
        with pytest.raises(DecodingFailure):
            rs.decode_erasures_blocks({0: blocks[0], 1: blocks[1]}, 6)

    def test_inconsistent_lengths_rejected(self):
        rs = ReedSolomon(k=2, m=4)
        blocks = rs.encode_blocks(b"abcd")
        with pytest.raises(DecodingFailure):
            rs.decode_erasures_blocks(
                {0: blocks[0], 1: blocks[1] + b"\x00"}, 4
            )

    def test_accepts_block_fragments_and_pairs(self):
        rs = ReedSolomon(k=2, m=5)
        payload = b"hello world!"
        blocks = rs.encode_blocks(payload)
        frags = [BlockFragment(j, blocks[j]) for j in (1, 3)]
        assert rs.decode_erasures_blocks(frags, len(payload)) == payload
        pairs = [(j, blocks[j]) for j in (4, 2)]
        assert rs.decode_erasures_blocks(pairs, len(payload)) == payload

    def test_index_out_of_range_rejected(self):
        rs = ReedSolomon(k=2, m=4)
        blocks = rs.encode_blocks(b"abcd")
        with pytest.raises(DecodingFailure):
            rs.decode_erasures_blocks({0: blocks[0], 9: blocks[1]}, 4)


def _corrupt(rng, blocks_map, victims):
    out = dict(blocks_map)
    for j in victims:
        b = bytearray(out[j])
        pos = rng.randrange(len(b))
        b[pos] ^= rng.randint(1, 255)
        out[j] = bytes(b)
    return out


class TestErrorEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=8),
        e=st.integers(min_value=0, max_value=4),
        payload=st.binary(min_size=1, max_size=200),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_corrects_up_to_the_bound(self, k, e, payload, seed):
        rng = random.Random(seed)
        m = min(k + 2 * e + rng.randrange(3), 60)
        rs = ReedSolomon(k=k, m=m)
        blocks = rs.encode_blocks(payload)
        r = rng.randint(k + 2 * e, m)
        received = rng.sample(range(m), r)
        victims = rng.sample(received, e)
        corrupted = _corrupt(rng, {j: blocks[j] for j in received}, victims)
        assert rs.decode_errors_blocks(corrupted, len(payload)) == payload

    def test_whole_fragment_garbling(self):
        """The Byzantine pattern protocols actually produce: every byte
        of a corrupted fragment garbled, across several stripes."""
        rng = random.Random(3)
        rs = ReedSolomon(k=5, m=20)
        payload = rng.randbytes(7 * rs.k)
        blocks = rs.encode_blocks(payload)
        corrupted = {j: blocks[j] for j in range(rs.m)}
        for j in rng.sample(range(rs.m), (rs.m - rs.k) // 2):
            corrupted[j] = bytes(b ^ 0x2A for b in corrupted[j])
        assert rs.decode_errors_blocks(corrupted, len(payload)) == payload

    def test_fold_blind_corruption_falls_back_correctly(self):
        """An error block whose stripe polynomial has alpha as a root is
        invisible to the fold; the per-stripe fallback must still decode
        (this pins the fast path's correctness escape hatch)."""
        rs = ReedSolomon(k=2, m=8)
        payload = bytes(range(8))  # 4 stripes over GF(2^8)
        blocks = rs.encode_blocks(payload)
        corrupted = {j: blocks[j] for j in range(rs.m)}
        # error polynomial e(x) = x + alpha: folds to e(alpha) = 0
        err = bytearray(len(blocks[0]))
        err[-2] ^= 1  # stripe weighted alpha^1 under the fold
        err[-1] ^= rs.field.alpha  # stripe weighted alpha^0
        # Place the invisible error on fragment 0 so the erasure pass
        # picks it, verification fails, and the fallback must run.
        corrupted[0] = bytes(
            a ^ b for a, b in zip(corrupted[0], err)
        )
        got = rs.decode_errors_blocks(corrupted, len(payload))
        assert got == payload

    def test_beyond_budget_never_returns_wrong_original(self):
        """Whole-fragment garbling one past the budget corrupts every
        stripe beyond its correction radius: the decoder must raise or
        land on a different codeword, never quietly return the original."""
        rng = random.Random(4)
        rs = ReedSolomon(k=3, m=9)
        payload = rng.randbytes(12)
        blocks = rs.encode_blocks(payload)
        corrupted = {j: blocks[j] for j in range(rs.m)}
        for j in rng.sample(range(rs.m), (rs.m - rs.k) // 2 + 1):
            corrupted[j] = bytes(b ^ rng.randint(1, 255) for b in corrupted[j])
        try:
            decoded = rs.decode_errors_blocks(corrupted, len(payload))
        except DecodingFailure:
            return
        assert decoded != payload

    def test_gf65536_error_blocks(self):
        rng = random.Random(5)
        rs = ReedSolomon(k=3, m=280)
        payload = rng.randbytes(50)
        blocks = rs.encode_blocks(payload)
        received = rng.sample(range(rs.m), 11)
        corrupted = _corrupt(
            rng, {j: blocks[j] for j in received}, rng.sample(received, 4)
        )
        assert rs.decode_errors_blocks(corrupted, len(payload)) == payload

    def test_systematic_error_decode(self):
        rng = random.Random(6)
        rs = ReedSolomon(k=4, m=12)
        payload = rng.randbytes(30)
        blocks = rs.encode_blocks(payload, systematic=True)
        corrupted = _corrupt(
            rng, {j: blocks[j] for j in range(rs.m)}, rng.sample(range(rs.m), 4)
        )
        got = rs.decode_errors_blocks(
            corrupted, len(payload), systematic=True
        )
        assert got == payload


class TestWorkCounters:
    def test_block_work_counts_symbol_equivalents(self):
        """Table 1's overhead ratios rely on block work being counted in
        the same units as the per-symbol oracle (ops per codeword times
        stripes)."""
        rs_blocks = ReedSolomon(k=3, m=9)
        rs_oracle = ReedSolomon(k=3, m=9)
        payload = bytes(range(9))  # 3 stripes
        blocks = rs_blocks.encode_blocks(payload)
        chunks, _ = rs_oracle.encode_bytes(payload)
        assert rs_blocks.work_counter == rs_oracle.work_counter
        before = rs_blocks.work_counter
        rs_blocks.decode_erasures_blocks(
            {j: blocks[j] for j in range(3)}, len(payload)
        )
        assert rs_blocks.work_counter - before == 3 * 3 * 3  # k^2 * stripes

    def test_basis_cache_shared_across_instances(self):
        """AVID constructs a fresh ReedSolomon per retrieval; the cached
        Lagrange basis must survive instance churn."""
        from repro.codes import reed_solomon as mod

        payload = bytes(range(20))
        blocks = ReedSolomon(k=4, m=10).encode_blocks(payload)
        subset = {j: blocks[j] for j in (1, 4, 6, 9)}
        ReedSolomon(k=4, m=10).decode_erasures_blocks(subset, len(payload))
        hits_before = mod._lagrange_basis.cache_info().hits
        ReedSolomon(k=4, m=10).decode_erasures_blocks(subset, len(payload))
        assert mod._lagrange_basis.cache_info().hits > hits_before
