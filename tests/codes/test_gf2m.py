"""Tests for GF(2^w) arithmetic and polynomial helpers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.gf2m import GF256, GF65536, GF2m


class TestConstruction:
    def test_rejects_nonprimitive_poly(self):
        # Tables build lazily, so the primitivity error surfaces on
        # first arithmetic use rather than at construction.
        bogus = GF2m(8, 0x100)  # x^8: not primitive
        with pytest.raises(ValueError):
            bogus.mul(2, 3)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            GF2m(1, 0x3)
        with pytest.raises(ValueError):
            GF2m(17, 0x3)

    def test_table_sizes(self):
        assert len(GF256.log) == 256
        assert GF65536.size == 65536

    def test_tables_lazy(self):
        # Importing the package must not pay for the ~196k GF(2^16)
        # table entries; a fresh field only materializes them on use.
        fresh = GF2m(16, 0x1100B)
        assert not fresh.tables_built
        assert fresh.mul(0x1234, 0x5678) == fresh.mul(0x5678, 0x1234)
        assert fresh.tables_built


class TestBlockKernel:
    def test_scale_block_matches_scalar_gf256(self):
        rng = random.Random(10)
        block = rng.randbytes(97)
        for s in (0, 1, 2, 7, 0x53, 255):
            expect = bytes(GF256.mul(s, v) for v in block)
            assert GF256.scale_block(s, block) == expect

    def test_scale_block_matches_scalar_gf65536(self):
        rng = random.Random(11)
        symbols = [rng.randrange(65536) for _ in range(41)]
        block = GF65536.symbols_to_block(symbols)
        for s in (0, 1, 2, 0x100, 0xBEEF, 65535):
            expect = GF65536.symbols_to_block(
                [GF65536.mul(s, v) for v in symbols]
            )
            assert GF65536.scale_block(s, block) == expect

    def test_scale_block_empty(self):
        assert GF256.scale_block(7, b"") == b""

    def test_xor_blocks(self):
        from repro.codes.gf2m import xor_blocks

        a, b = bytes(range(50)), bytes(reversed(range(50)))
        assert xor_blocks(a, b) == bytes(x ^ y for x, y in zip(a, b))
        with pytest.raises(ValueError):
            xor_blocks(b"\x00", b"\x00\x00")

    def test_symbol_block_roundtrip(self):
        rng = random.Random(12)
        for field in (GF256, GF65536):
            symbols = [rng.randrange(field.size) for _ in range(23)]
            assert field.block_to_symbols(field.symbols_to_block(symbols)) == symbols


class TestArithmetic:
    def test_add_is_xor(self):
        assert GF256.add(0x53, 0xCA) == 0x53 ^ 0xCA
        assert GF256.sub(0x53, 0xCA) == 0x53 ^ 0xCA

    def test_mul_identity_and_zero(self):
        for a in (1, 7, 200, 255):
            assert GF256.mul(a, 1) == a
            assert GF256.mul(a, 0) == 0

    def test_known_aes_product(self):
        # 0x53 * 0xCA == 0x01 in GF(2^8) with poly 0x11B... our poly is
        # 0x11D, so verify against the log tables instead.
        a, b = 0x53, 0xCA
        expected = GF256.exp[(GF256.log[a] + GF256.log[b]) % 255]
        assert GF256.mul(a, b) == expected

    def test_inverse_all_elements(self):
        for a in range(1, 256):
            assert GF256.mul(a, GF256.inv(a)) == 1

    def test_zero_inverse_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inv(0)
        with pytest.raises(ZeroDivisionError):
            GF256.div(5, 0)

    def test_div_roundtrip(self):
        rng = random.Random(0)
        for _ in range(100):
            a, b = rng.randrange(256), rng.randrange(1, 256)
            assert GF256.mul(GF256.div(a, b), b) == a

    def test_pow(self):
        assert GF256.pow(2, 0) == 1
        assert GF256.pow(2, 1) == 2
        assert GF256.pow(0, 5) == 0
        assert GF256.pow(0, 0) == 1
        # Fermat: a^(2^8 - 1) == 1
        for a in (3, 99, 255):
            assert GF256.pow(a, 255) == 1

    def test_element_at_distinct(self):
        points = [GF256.element_at(i) for i in range(255)]
        assert len(set(points)) == 255
        assert 0 not in points

    @settings(max_examples=60, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
        c=st.integers(min_value=0, max_value=255),
    )
    def test_field_axioms(self, a, b, c):
        f = GF256
        assert f.mul(a, b) == f.mul(b, a)
        assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))
        assert f.mul(a, b ^ c) == f.mul(a, b) ^ f.mul(a, c)


class TestPolynomials:
    def test_eval_constant(self):
        assert GF256.poly_eval([7], 100) == 7
        assert GF256.poly_eval([], 100) == 0

    def test_eval_linear(self):
        # p(x) = 3 + 2x at x=5: 3 ^ mul(2,5)
        assert GF256.poly_eval([3, 2], 5) == 3 ^ GF256.mul(2, 5)

    def test_add_cancels(self):
        assert GF256.poly_add([1, 2, 3], [1, 2, 3]) == []

    def test_mul_degree(self):
        p = GF256.poly_mul([1, 1], [1, 1])  # (1+x)^2 = 1 + x^2 in char 2
        assert p == [1, 0, 1]

    def test_divmod_exact(self):
        a = GF256.poly_mul([3, 1], [5, 7, 1])
        q, r = GF256.poly_divmod(a, [3, 1])
        assert r == []
        assert q == [5, 7, 1]

    def test_divmod_remainder(self):
        num = [1, 0, 0, 1]  # 1 + x^3
        den = [1, 1]  # 1 + x
        q, r = GF256.poly_divmod(num, den)
        # verify num = q*den + r
        recon = GF256.poly_add(GF256.poly_mul(q, den), r)
        assert recon == [c for c in num]

    def test_divmod_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            GF256.poly_divmod([1], [])

    def test_deriv_char2(self):
        # d/dx (a + bx + cx^2 + dx^3) = b + dx^2 (even terms vanish)
        assert GF256.poly_deriv([9, 7, 5, 3]) == [7, 0, 3]

    @settings(max_examples=40, deadline=None)
    @given(
        a=st.lists(st.integers(min_value=0, max_value=255), max_size=6),
        b=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=4),
    )
    def test_property_divmod_identity(self, a, b):
        if not any(b):
            return
        q, r = GF256.poly_divmod(a, b)
        recon = GF256.poly_add(GF256.poly_mul(q, b), r)
        trimmed = list(a)
        while trimmed and trimmed[-1] == 0:
            trimmed.pop()
        assert recon == trimmed
