"""Fuzz round-trips for Reed-Solomon over GF(2^m).

Seeded random payloads and random erasure/error patterns, swept up to the
decoding bound -- any k fragments reconstruct, up to ``(r - k) // 2``
corrupted values correct -- plus expected-failure cases strictly beyond
the bound.  Deterministic seeds make every failing draw reproducible.
"""

import random

import pytest

from repro.codes.gf2m import GF65536
from repro.codes.reed_solomon import DecodingFailure, Fragment, ReedSolomon


def _random_code(rng: random.Random, *, max_m: int = 40) -> ReedSolomon:
    k = rng.randint(1, 10)
    m = rng.randint(k, max_m)
    return ReedSolomon(k, m)


def _random_data(rng: random.Random, rs: ReedSolomon) -> list[int]:
    return [rng.randrange(rs.field.size) for _ in range(rs.k)]


class TestErasureFuzz:
    @pytest.mark.parametrize("seed", range(30))
    def test_any_k_fragments_reconstruct(self, seed):
        rng = random.Random(seed)
        rs = _random_code(rng)
        data = _random_data(rng, rs)
        fragments = rs.encode(data)
        chosen = rng.sample(fragments, rs.k)
        assert rs.decode_erasures(chosen) == data

    @pytest.mark.parametrize("seed", range(10))
    def test_below_threshold_fails(self, seed):
        rng = random.Random(100 + seed)
        rs = _random_code(rng)
        if rs.k == 1:
            rs = ReedSolomon(2, max(2, rs.m))
            data = _random_data(rng, rs)
        else:
            data = _random_data(rng, rs)
        fragments = rs.encode(data)
        short = rng.sample(fragments, rs.k - 1)
        with pytest.raises(DecodingFailure):
            rs.decode_erasures(short)

    @pytest.mark.parametrize("seed", range(10))
    def test_bytes_round_trip_with_erasures(self, seed):
        rng = random.Random(200 + seed)
        rs = _random_code(rng)
        payload = rng.randbytes(rng.randint(1, 200))
        blocks, length = rs.encode_bytes(payload)
        surviving = [rng.sample(list(block), rs.k) for block in blocks]
        assert rs.decode_bytes(surviving, length) == payload

    def test_gf65536_large_fragment_count(self):
        rng = random.Random(7)
        rs = ReedSolomon(8, 300)  # m >= 256 forces the 16-bit field
        assert rs.field is GF65536
        data = _random_data(rng, rs)
        fragments = rs.encode(data)
        chosen = rng.sample(fragments, rs.k)
        assert rs.decode_erasures(chosen) == data


def _corrupt(rng, rs, fragments, count):
    """Corrupt ``count`` distinct fragments to different random values."""
    victims = rng.sample(range(len(fragments)), count)
    out = list(fragments)
    for i in victims:
        original = out[i]
        wrong = original.value
        while wrong == original.value:
            wrong = rng.randrange(rs.field.size)
        out[i] = Fragment(index=original.index, value=wrong)
    return out


class TestErrorFuzz:
    @pytest.mark.parametrize("seed", range(30))
    def test_corrects_up_to_the_bound(self, seed):
        rng = random.Random(300 + seed)
        rs = _random_code(rng, max_m=30)
        data = _random_data(rng, rs)
        received = list(rs.encode(data))
        budget = (len(received) - rs.k) // 2
        errors = rng.randint(0, budget)
        corrupted = _corrupt(rng, rs, received, errors)
        assert rs.decode_errors(corrupted) == data

    @pytest.mark.parametrize("seed", range(20))
    def test_beyond_the_bound_never_silently_lies_as_success(self, seed):
        """One error past the budget: the decoder must either raise or
        land on a *different* codeword -- with random corruption it can
        never quietly return the original as if nothing happened while
        claiming the error count fit the budget."""
        rng = random.Random(400 + seed)
        k = rng.randint(1, 6)
        m = rng.randint(k + 2, 24)
        rs = ReedSolomon(k, m)
        data = _random_data(rng, rs)
        received = list(rs.encode(data))
        budget = (len(received) - rs.k) // 2
        corrupted = _corrupt(rng, rs, received, budget + 1)
        try:
            decoded = rs.decode_errors(corrupted)
        except DecodingFailure:
            return  # the expected outcome for most draws
        # Rare legal alternative: the corrupted word fell within another
        # codeword's radius.  It must not equal the original data.
        assert decoded != data

    @pytest.mark.parametrize("seed", range(8))
    def test_erasures_and_errors_combined(self, seed):
        """Drop fragments first, then corrupt within the reduced budget."""
        rng = random.Random(500 + seed)
        rs = ReedSolomon(4, 16)
        data = _random_data(rng, rs)
        fragments = rs.encode(data)
        keep = rng.randint(rs.k + 2, rs.m)
        received = rng.sample(fragments, keep)
        budget = (keep - rs.k) // 2
        corrupted = _corrupt(rng, rs, received, rng.randint(0, budget))
        assert rs.decode_errors(corrupted) == data
