"""Tests for Berlekamp-Massey LFSR synthesis and Chien search."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.berlekamp import berlekamp_massey, chien_search, lfsr_generate
from repro.codes.gf2m import GF256


class TestLfsrGenerate:
    def test_known_recurrence(self):
        # s_n = s_{n-1} (connection 1 + x): constant continuation.
        out = lfsr_generate(GF256, [1, 1], [9], 5)
        assert out == [9, 9, 9, 9, 9]

    def test_seed_too_short(self):
        with pytest.raises(ValueError):
            lfsr_generate(GF256, [1, 1, 1], [5], 4)


class TestBerlekampMassey:
    def test_recovers_known_lfsr(self):
        conn = [1, 7, 3]
        seq = lfsr_generate(GF256, conn, [1, 9], 16)
        assert berlekamp_massey(GF256, seq) == conn

    def test_zero_sequence(self):
        assert berlekamp_massey(GF256, [0] * 8) == [1]

    def test_constant_sequence(self):
        conn = berlekamp_massey(GF256, [5] * 10)
        # Must regenerate the sequence.
        assert lfsr_generate(GF256, conn, [5], 10) == [5] * 10

    def test_degree_is_minimal(self):
        # A degree-2 recurrence must not synthesize to degree 3+.
        conn = [1, 2, 3]
        seq = lfsr_generate(GF256, conn, [4, 5], 14)
        rec = berlekamp_massey(GF256, seq)
        assert len(rec) - 1 <= 2

    @settings(max_examples=40, deadline=None)
    @given(
        taps=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=4),
        seed_vals=st.data(),
    )
    def test_property_synthesized_lfsr_regenerates(self, taps, seed_vals):
        degree = len(taps)
        conn = [1] + taps
        seed = seed_vals.draw(
            st.lists(
                st.integers(min_value=0, max_value=255),
                min_size=degree,
                max_size=degree,
            )
        )
        seq = lfsr_generate(GF256, conn, seed, 4 * degree + 4)
        rec = berlekamp_massey(GF256, seq)
        deg = len(rec) - 1
        # Defining property: the recurrence holds from position `deg` on.
        for n in range(deg, len(seq)):
            expected = 0
            for i in range(1, deg + 1):
                expected ^= GF256.mul(rec[i], seq[n - i])
            assert seq[n] == expected
        # Minimality: no longer than the recurrence we generated with.
        assert deg <= degree


class TestChienSearch:
    def test_finds_roots_of_locator(self):
        # Locator with roots alpha^{-3} and alpha^{-7}:
        # (1 - x alpha^3)(1 - x alpha^7)
        a3 = GF256.element_at(3)
        a7 = GF256.element_at(7)
        locator = GF256.poly_mul([1, a3], [1, a7])
        roots = chien_search(GF256, locator)
        assert sorted(roots) == [3, 7]

    def test_rootless_polynomial(self):
        # x^2 + x + irreducible constant has no roots in some cases; just
        # check consistency: every reported root really evaluates to zero.
        locator = [5, 3, 1]
        for i in chien_search(GF256, locator):
            x = GF256.inv(GF256.element_at(i))
            assert GF256.poly_eval(locator, x) == 0
