"""The Session runner: committee + policy + backend + protocol.

The acceptance bar: ``Session.from_spec(spec).run()`` on the sim backend
reproduces the pre-refactor ``run_scenario(spec)`` record byte for byte.
"""

import pytest

from repro.api import BackendSpec, Committee, Session
from repro.core import WeightRestriction
from repro.scenarios import get_scenario, run_scenario

#: the two registry scenarios pinned by the golden-record equivalence
#: requirement (one fault-free, one with a fault plan)
GOLDEN = ("uniform-rbc", "crash-f-rbc")


class TestBackendSpec:
    def test_defaults(self):
        spec = BackendSpec()
        assert spec.name == "sim" and spec.timeout == 60.0

    def test_of_coerces_names(self):
        assert BackendSpec.of("inproc").name == "inproc"
        spec = BackendSpec("tcp", timeout=5.0)
        assert BackendSpec.of(spec) is spec

    def test_rejects_unknown_backend_and_bad_timeout(self):
        with pytest.raises(ValueError, match="unknown backend"):
            BackendSpec("quic")
        with pytest.raises(ValueError, match="timeout"):
            BackendSpec("sim", timeout=0)


class TestGoldenRecordEquivalence:
    @pytest.mark.parametrize("name", GOLDEN)
    def test_sim_record_byte_identical_to_run_scenario(self, name):
        spec = get_scenario(name)
        legacy = run_scenario(spec, backend="sim")
        facade = Session.from_spec(spec, backend="sim").run()
        assert facade.record_json() == legacy.record_json()
        assert facade.record() == legacy.record()

    def test_seeded_specs_stay_identical(self):
        spec = get_scenario("uniform-rbc").with_seed(41)
        assert (
            Session.from_spec(spec).run().record_json()
            == run_scenario(spec, backend="sim").record_json()
        )


class TestSession:
    def test_from_spec_carries_committee_and_spec(self):
        spec = get_scenario("zipf-stake-smr")
        session = Session.from_spec(spec, backend="sim")
        assert session.committee.n == spec.weights.n
        assert session.base_spec is spec
        assert session.to_spec() is spec
        assert session.committee.int_weights == spec.weights.materialize(spec.seed)

    def test_direct_session_runs_on_sim(self):
        committee = Committee.from_weights((40, 25, 15, 10, 5, 3, 1, 1))
        result = Session(committee=committee, protocol="rbc", name="direct-rbc").run()
        assert result.completed
        assert result.n_real == committee.n
        assert len(set(result.decided.values())) == 1

    def test_direct_session_pins_resolved_weights(self):
        # A sampled committee executes as an explicit vector: rerunning
        # the same session must not resample.
        committee = Committee.synthetic("zipf", n=8, total=800, skew=1.2, seed=5)
        session = Session(committee=committee, protocol="rbc", name="zipf-pin")
        spec = session.to_spec()
        assert spec.weights.kind == "explicit"
        assert list(spec.weights.values) == committee.int_weights
        assert spec.seed == committee.seed == 5
        assert session.run().record_json() == session.run().record_json()

    def test_with_backend_switches_execution(self):
        spec = get_scenario("uniform-rbc")
        session = Session.from_spec(spec, backend="sim")
        live = session.with_backend("inproc", timeout=30.0)
        assert live.backend.name == "inproc" and live.backend.timeout == 30.0
        sim_result = session.run()
        live_result = live.run()
        assert live_result.completed
        assert sim_result.decided == live_result.decided

    def test_infeasible_session_rejected_via_committee_validate(self):
        from repro.scenarios import FaultSpec

        committee = Committee.from_weights((5, 5, 5, 5))
        session = Session(
            committee=committee,
            protocol="rbc",
            name="bad-crash",
            faults=FaultSpec(crashes=(9,)),
        )
        with pytest.raises(ValueError, match="out of range"):
            session.run()

    def test_over_budget_crash_plan_rejected_up_front(self):
        # Crashing weight >= f_w*W can never reach a quorum; the run must
        # fail fast at validation instead of burning the backend timeout
        # (or, on sim, silently reporting completed=False).
        from repro.scenarios import FaultSpec

        session = Session(
            committee=Committee.from_weights((10, 10, 10)),
            protocol="rbc",
            name="over-budget",
            f_w="1/3",
            faults=FaultSpec(crashes=(0,)),
        )
        with pytest.raises(ValueError, match="quorums can never form"):
            session.run()

    def test_session_solve_uses_policy(self):
        committee = Committee.from_weights((40, 25, 15, 10, 5, 3, 1, 1))
        session = Session(committee=committee, protocol="rbc", policy="swiper-linear")
        result = session.solve(WeightRestriction("1/3", "1/2"))
        assert result.policy == "swiper-linear"
        assert result.verdict == "valid"
        override = session.solve(WeightRestriction("1/3", "1/2"), policy="swiper")
        assert override.policy == "swiper"
