"""The Committee value object and the WeightSource abstraction."""

from fractions import Fraction

import pytest

from repro.api import (
    ChainWeights,
    Committee,
    CommitteeValidationError,
    FileWeights,
    InlineWeights,
    SyntheticWeights,
    weight_source_from_args,
)

STAKE = (40, 25, 15, 10, 5, 3, 1, 1)


class TestWeightSources:
    def test_inline_round_trips_verbatim(self):
        src = InlineWeights(["1/2", 3, 0.25])
        assert src.resolve() == ["1/2", 3, 0.25]
        assert src.resolve(seed=9) == src.resolve(seed=0)  # seed ignored

    def test_inline_rejects_empty(self):
        with pytest.raises(ValueError):
            InlineWeights([])

    def test_file_skips_blank_lines(self, tmp_path):
        f = tmp_path / "w.txt"
        f.write_text("100\n50\n\n25\n")
        assert FileWeights(str(f)).resolve() == ["100", "50", "25"]

    def test_empty_file_rejected(self, tmp_path):
        f = tmp_path / "empty.txt"
        f.write_text("\n\n")
        with pytest.raises(ValueError, match="no weights"):
            FileWeights(str(f)).resolve()

    def test_chain_full_and_truncated(self):
        from repro.datasets import load_chain

        full = ChainWeights("tezos").resolve()
        assert full == list(load_chain("tezos").weights)
        top = ChainWeights("tezos", n=12).resolve()
        assert len(top) == 12
        assert top == sorted(full, reverse=True)[:12]

    def test_synthetic_deterministic_in_seed(self):
        src = SyntheticWeights("zipf", n=50, total=5000, skew=1.2)
        assert src.resolve(seed=3) == src.resolve(seed=3)
        assert src.resolve(seed=3) != src.resolve(seed=4)
        assert sum(src.resolve(seed=3)) == 5000

    def test_synthetic_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown synthetic kind"):
            SyntheticWeights("cauchy", n=5, total=50)

    def test_from_args_dispatch(self, tmp_path):
        assert weight_source_from_args() is None
        assert isinstance(weight_source_from_args(weights=[1, 2]), InlineWeights)
        assert isinstance(weight_source_from_args(weights_file="x"), FileWeights)
        assert isinstance(weight_source_from_args(chain="aptos"), ChainWeights)
        with pytest.raises(ValueError, match="mutually exclusive"):
            weight_source_from_args(weights=[1], chain="aptos")


class TestCommittee:
    def test_from_weights(self):
        c = Committee.from_weights(STAKE)
        assert c.n == len(STAKE) == len(c)
        assert c.total_weight == Fraction(100)
        assert c.int_weights == list(STAKE)

    def test_normalization_accepts_fraction_strings(self):
        c = Committee.from_weights(["1/2", "1/4", "1/4"])
        assert c.total_weight == 1
        with pytest.raises(ValueError, match="not an integer"):
            c.int_weights

    def test_rejects_invalid_weight_vectors(self):
        with pytest.raises(ValueError):
            Committee.from_weights([])
        with pytest.raises(ValueError):
            Committee.from_weights([0, 0])
        with pytest.raises(ValueError):
            Committee.from_weights([5, -1])

    def test_digest_matches_scenario_convention(self):
        # The scenario engine historically fingerprinted the materialized
        # list as sha256(repr(list))[:16]; records must not shift.
        import hashlib

        c = Committee.from_weights(STAKE)
        expected = hashlib.sha256(repr(list(STAKE)).encode()).hexdigest()[:16]
        assert c.weights_digest == expected

    def test_equal_sources_build_equal_committees(self):
        a = Committee.synthetic("zipf", n=10, total=1000, skew=1.2, seed=7)
        b = Committee.synthetic("zipf", n=10, total=1000, skew=1.2, seed=7)
        assert a == b

    def test_from_weight_spec_matches_materialize(self):
        from repro.scenarios import WeightSpec

        spec = WeightSpec(kind="lognormal", n=20, total=2000, skew=1.5)
        c = Committee.from_weight_spec(spec, seed=11)
        assert c.int_weights == spec.materialize(11)

    def test_uniform_is_egalitarian(self):
        c = Committee.uniform(7)
        assert c.int_weights == [1] * 7
        with pytest.raises(CommitteeValidationError):
            Committee.uniform(0)

    def test_quorums(self):
        q = Committee.from_weights(STAKE).quorums("1/3")
        assert q.ready_amplify([0])  # the whale alone exceeds f_w * W
        assert not q.deliver_quorum([0])

    def test_committee_sizes_sim_world(self):
        # build_world derives n from the committee and keeps it for
        # provenance -- the sim-layer half of the facade rewiring.
        from repro.protocols.reliable_broadcast import BroadcastParty
        from repro.sim import build_world

        committee = Committee.from_weights(STAKE)
        quorums = committee.quorums("1/3")
        world = build_world(
            lambda pid: BroadcastParty(pid, quorums), committee=committee
        )
        assert len(world.parties) == committee.n
        assert world.committee is committee
        world.party(0).broadcast_value(b"hi")
        world.run()
        assert all(p.delivered == b"hi" for p in world.parties)
        with pytest.raises(ValueError, match="needs n or a committee"):
            build_world(lambda pid: BroadcastParty(pid, quorums))

    def test_committee_sizes_live_cluster(self):
        # run_cluster likewise: no explicit n, the committee decides.
        from repro.protocols.reliable_broadcast import BroadcastParty
        from repro.runtime import run_cluster

        committee = Committee.from_weights(STAKE)
        quorums = committee.quorums("1/3")
        cluster = run_cluster(
            lambda pid: BroadcastParty(pid, quorums),
            setup=lambda c: c.party(0).broadcast_value(b"hi"),
            stop_when=lambda c: all(p.delivered == b"hi" for p in c.parties),
            committee=committee,
        )
        assert cluster.n == committee.n
        assert cluster.committee is committee
        with pytest.raises(ValueError, match="needs n or a committee"):
            run_cluster(lambda pid: BroadcastParty(pid, quorums))

    def test_analysis_layers_accept_committee(self):
        from fractions import Fraction as F

        from repro.analysis import TicketMetrics, alpha_grid_sweep
        from repro.core import WeightRestriction

        committee = Committee.from_weights(STAKE)
        via_committee = alpha_grid_sweep(
            committee, alpha_ns=[F(1, 2)], ratios=[F(1, 2)]
        )
        via_weights = alpha_grid_sweep(STAKE, alpha_ns=[F(1, 2)], ratios=[F(1, 2)])
        assert via_committee == via_weights
        result = committee.solve(WeightRestriction("1/3", "1/2"))
        assert TicketMetrics.from_result(result) == TicketMetrics.from_assignment(
            result.assignment
        )


class TestValidate:
    def test_feasible_plan_passes(self):
        Committee.from_weights(STAKE).validate(
            f_w="1/3", crashes=(6, 7), payload_size=32, epochs=2
        )

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(expect_n=5), "does not match"),
            (dict(f_w="2/3"), "f_w"),
            (dict(payload_size=0), "payload_size"),
            (dict(epochs=0), "epochs"),
            (dict(crashes=(42,)), "out of range"),
            (dict(partition=((0, 1), (2, 99))), "out of range"),
            (dict(link_delays=((0, 88, 0.1),)), "out of range"),
            (dict(crashes=tuple(range(len(STAKE)))), "crashes every party"),
            (dict(f_w="1/3", crashes=(0,)), "quorums can never form"),
        ],
    )
    def test_infeasible_combinations_rejected(self, kwargs, match):
        with pytest.raises(CommitteeValidationError, match=match):
            Committee.from_weights(STAKE).validate(**kwargs)

    def test_error_payload_shape(self):
        try:
            Committee.from_weights(STAKE).validate(f_w="3/4")
        except CommitteeValidationError as exc:
            assert set(exc.as_payload()) == {"error"}
        else:  # pragma: no cover
            pytest.fail("expected CommitteeValidationError")

    def test_is_a_value_error(self):
        # Pre-facade callers catch ValueError; the subclass must satisfy them.
        assert issubclass(CommitteeValidationError, ValueError)
