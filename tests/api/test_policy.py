"""The solver-policy registry and its uniform result type."""

import pytest

from repro.api import (
    POLICIES,
    Committee,
    TicketAssignmentResult,
    get_policy,
    register_policy,
    solve_with_policy,
)
from repro.core import TicketAssignment, WeightRestriction, WeightSeparation, is_valid_assignment

STAKE = (40, 25, 15, 10, 5, 3, 1, 1)
WR = WeightRestriction("1/3", "1/2")


class TestRegistry:
    def test_builtin_policies_present(self):
        assert {"swiper", "swiper-linear", "milp", "brute-force"} <= set(POLICIES)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown solver policy"):
            get_policy("simulated-annealing")

    def test_custom_policy_hook(self):
        # The `custom` hook: any callable returning a ticket sequence.
        def everyone_one(problem, weights):
            return [1] * len(tuple(weights))

        register_policy("everyone-one", everyone_one, description="test stub")
        try:
            result = Committee.from_weights(STAKE).solve(WR, "everyone-one")
            assert result.policy == "everyone-one"
            assert result.assignment.to_list() == [1] * len(STAKE)
            # n tickets spread over every party fails WR(1/3, 1/2) here,
            # and the uniform verdict must say so.
            assert result.verdict == (
                "valid" if is_valid_assignment(WR, STAKE, result.assignment) else "invalid"
            )
        finally:
            del POLICIES["everyone-one"]


class TestUniformResult:
    @pytest.mark.parametrize("policy", ["swiper", "swiper-linear", "milp", "brute-force"])
    def test_bound_achieved_verdict(self, policy):
        committee = Committee.from_weights(STAKE)
        result = committee.solve(WR, policy)
        assert isinstance(result, TicketAssignmentResult)
        assert result.verdict == "valid"
        assert result.achieved == result.assignment.total == result.total_tickets
        assert result.bound == WR.ticket_bound(committee.n)
        assert result.within_bound
        assert is_valid_assignment(WR, STAKE, result.assignment)

    def test_exact_policies_never_beat_by_swiper(self):
        committee = Committee.from_weights(STAKE)
        swiper = committee.solve(WR, "swiper")
        milp = committee.solve(WR, "milp")
        family = committee.solve(WR, "brute-force")
        assert milp.achieved <= family.achieved <= swiper.achieved

    def test_swiper_result_metadata_preserved(self):
        result = Committee.from_weights(STAKE).solve(WR, "swiper")
        assert result.probes is not None and result.probes >= 1
        assert result.elapsed_seconds >= 0

    def test_unverified_skips_the_checker(self):
        result = Committee.from_weights(STAKE).solve(WR, "swiper", verify=False)
        assert result.verdict == "unverified"

    def test_as_dict_is_json_ready(self):
        import json

        payload = Committee.from_weights(STAKE).solve(WR, "swiper").as_dict()
        json.dumps(payload)
        assert payload["policy"] == "swiper"
        assert payload["total_tickets"] <= payload["ticket_bound"]

    def test_ws_problems_supported(self):
        result = Committee.from_weights(STAKE).solve(WeightSeparation("1/3", "1/2"))
        assert result.verdict == "valid"

    def test_accepts_raw_weight_sequences(self):
        # solve_with_policy duck-types: anything with .weights, or a
        # plain sequence.
        direct = solve_with_policy(WR, STAKE, "swiper")
        via_committee = solve_with_policy(WR, Committee.from_weights(STAKE), "swiper")
        assert direct.assignment == via_committee.assignment
