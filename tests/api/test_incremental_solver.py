"""IncrementalSolver: the fast path must be invisible in the output.

Oracle property: for any small stake delta, solving on the patched
price stream yields ticket-for-ticket the same assignment (and the same
probe sequence) as a cold solve of the new weights.  The fast path is an
optimization, never an approximation.
"""

import random

import pytest

from repro.api import Committee, IncrementalSolver, solve_with_policy
from repro.core import WeightRestriction

PROBLEM = WeightRestriction("1/3", "1/2")


def _zipf_weights(n, seed=7):
    return tuple(Committee.synthetic("zipf", n=n, total=n * 100, skew=1.2, seed=seed).int_weights)


def _cold(ws):
    solver = IncrementalSolver(PROBLEM)
    result = solver.solve(ws)
    assert solver.last_mode == "cold"
    return result


class TestOracleEquality:
    def test_single_party_deltas_match_cold_solve(self):
        base = _zipf_weights(160)
        rng = random.Random(13)
        mismatches = 0
        for _ in range(20):
            i = rng.randrange(len(base))
            bump = rng.choice([-1, 1]) * max(1, base[i] // 10)
            ws = list(base)
            ws[i] = max(1, ws[i] + bump)
            ws = tuple(ws)

            solver = IncrementalSolver(PROBLEM)
            solver.solve(base)
            inc = solver.solve(ws)
            assert solver.last_mode == "incremental"
            assert solver.last_changed == (1 if ws != base else 0)
            assert solver.incremental_hits == 1

            cold = _cold(ws)
            if (
                inc.assignment.tickets != cold.assignment.tickets
                or inc.achieved != cold.achieved
                or inc.probes != cold.probes
            ):
                mismatches += 1
        assert mismatches == 0

    def test_matches_the_registry_swiper_policy(self):
        base = _zipf_weights(60)
        ws = (base[0] + 5, *base[1:])
        solver = IncrementalSolver(PROBLEM)
        solver.solve(base)
        inc = solver.solve(ws)
        assert solver.last_mode == "incremental"
        oracle = solve_with_policy(PROBLEM, Committee.from_weights(ws), "swiper")
        assert inc.assignment.tickets == oracle.assignment.tickets
        assert inc.achieved == oracle.achieved

    def test_chained_drifts_stay_equal(self):
        ws = list(_zipf_weights(80))
        solver = IncrementalSolver(PROBLEM)
        solver.solve(tuple(ws))
        for step in range(6):
            i = step % len(ws)
            ws[i] += max(1, ws[i] // 8)
            inc = solver.solve(tuple(ws))
            assert solver.last_mode == "incremental"
            cold = _cold(tuple(ws))
            assert inc.assignment.tickets == cold.assignment.tickets
            assert inc.probes == cold.probes
        assert solver.incremental_hits == 6

    def test_patch_chain_cap_compacts_and_stays_oracle_equal(self):
        """Regression: the patched-stream chain is capped at _MAX_CHAIN.

        A service that rotates many times would otherwise stack one
        _PatchedPriceStream per epoch, and every extension would walk the
        whole tower.  Past the cap the cached stream is flattened to a
        plain (chain-0) stream -- equivalent to a cold rebuild of the
        price stream -- and the next drifts start a fresh chain.  The
        flattening must be invisible: every solve along a long drift
        chain stays ticket-for-ticket equal to a cold solve.
        """
        cap = IncrementalSolver._MAX_CHAIN
        ws = list(_zipf_weights(80))
        solver = IncrementalSolver(PROBLEM)
        solver.solve(tuple(ws))
        chains = []
        for step in range(2 * cap + 2):
            i = step % len(ws)
            ws[i] += max(1, ws[i] // 8)
            inc = solver.solve(tuple(ws))
            assert solver.last_mode == "incremental"
            chains.append(solver._stream._chain)
            cold = _cold(tuple(ws))
            assert inc.assignment.tickets == cold.assignment.tickets
            assert inc.achieved == cold.achieved
            assert inc.probes == cold.probes
        # The cached chain never reaches the cap (a chain that grows to
        # _MAX_CHAIN is compacted before being cached) ...
        assert max(chains) == cap - 1
        # ... and the flattening actually happened: after the cap the
        # cached stream is a plain chain-0 one -- the cold-rebuilt
        # stream -- rather than a tower that grows without bound.
        assert 0 in chains[1:]
        assert solver.incremental_hits == 2 * cap + 2


class TestFallbacks:
    def test_first_solve_is_cold(self):
        solver = IncrementalSolver(PROBLEM)
        solver.solve(_zipf_weights(20))
        assert solver.last_mode == "cold"
        assert solver.incremental_hits == 0

    def test_large_delta_falls_back_to_cold(self):
        base = _zipf_weights(40)
        solver = IncrementalSolver(PROBLEM, max_delta=4)
        solver.solve(base)
        ws = tuple(w + 1 for w in base)  # every party changed
        result = solver.solve(ws)
        assert solver.last_mode == "cold"
        assert result.assignment.tickets == _cold(ws).assignment.tickets

    def test_shrinking_committee_falls_back_to_cold(self):
        base = _zipf_weights(40)
        solver = IncrementalSolver(PROBLEM)
        solver.solve(base)
        solver.solve(base[:-1])
        assert solver.last_mode == "cold"

    def test_joining_party_is_incremental(self):
        base = _zipf_weights(40)
        solver = IncrementalSolver(PROBLEM)
        solver.solve(base)
        ws = (*base, 50)
        inc = solver.solve(ws)
        assert solver.last_mode == "incremental"
        assert inc.assignment.tickets == _cold(ws).assignment.tickets

    def test_unchanged_weights_reuse_the_stream(self):
        base = _zipf_weights(40)
        solver = IncrementalSolver(PROBLEM)
        first = solver.solve(base)
        again = solver.solve(base)
        assert solver.last_mode == "incremental"
        assert solver.last_changed == 0
        assert again.assignment.tickets == first.assignment.tickets


class TestValidation:
    def test_zero_total_weight_raises(self):
        solver = IncrementalSolver(PROBLEM)
        with pytest.raises((ValueError, ZeroDivisionError)):
            solver.solve((0, 0, 0))
