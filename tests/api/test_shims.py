"""Compatibility shims and the frozen API surface.

Every pre-facade public name must keep importing and keep producing the
same results through the facade; the facade's own exports are frozen in
``api_surface.txt`` so drift fails the build (locally here, and in the
CI api-surface job).
"""

from pathlib import Path

import pytest

import repro
import repro.api
import repro.core
import repro.scenarios


class TestLegacyImportsStillResolve:
    @pytest.mark.parametrize("name", sorted(repro.core.__all__))
    def test_core_all_names_import(self, name):
        assert getattr(repro.core, name) is not None

    @pytest.mark.parametrize("name", sorted(repro.scenarios.__all__))
    def test_scenarios_all_names_import(self, name):
        assert getattr(repro.scenarios, name) is not None

    @pytest.mark.parametrize("name", sorted(n for n in repro.__all__ if n != "__version__"))
    def test_top_level_all_names_import(self, name):
        assert getattr(repro, name) is not None

    def test_legacy_results_match_facade(self):
        # Old entry point and facade entry point agree ticket for ticket.
        from repro.api import Committee
        from repro.core import WeightRestriction, solve

        stake = (40, 25, 15, 10, 5, 3, 1, 1)
        problem = WeightRestriction("1/3", "1/2")
        legacy = solve(problem, stake)
        facade = Committee.from_weights(stake).solve(problem)
        assert legacy.assignment == facade.assignment
        assert legacy.ticket_bound == facade.bound


class TestDeprecationShims:
    @pytest.mark.parametrize(
        "module, name",
        [
            (repro.core, "Committee"),
            (repro.core, "TicketAssignmentResult"),
            (repro.core, "solve_with_policy"),
            (repro.scenarios, "Committee"),
            (repro.scenarios, "Session"),
            (repro.scenarios, "BackendSpec"),
        ],
    )
    def test_moved_names_resolve_with_deprecation_warning(self, module, name):
        with pytest.warns(DeprecationWarning, match="repro.api"):
            obj = getattr(module, name)
        assert obj is getattr(repro.api, name)

    def test_unknown_names_still_raise(self):
        with pytest.raises(AttributeError):
            repro.core.no_such_thing
        with pytest.raises(AttributeError):
            repro.scenarios.no_such_thing

    def test_top_level_reexports_without_warning(self, recwarn):
        assert repro.Committee is repro.api.Committee
        assert repro.Session is repro.api.Session
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]

    def test_top_level_exports_discoverable(self):
        # The lazy re-exports must be visible to `from repro import *`
        # and dir(), not just resolvable by name.
        assert set(repro._API_EXPORTS) <= set(repro.__all__)
        assert set(repro._API_EXPORTS) <= set(dir(repro))


class TestApiSurfaceGuard:
    def test_all_matches_checked_in_snapshot(self):
        snapshot = Path(__file__).resolve().parents[2] / "api_surface.txt"
        frozen = snapshot.read_text().split()
        assert sorted(repro.api.__all__) == frozen, (
            "repro.api.__all__ drifted from api_surface.txt; if the change "
            "is intentional, regenerate the snapshot (see .github/workflows/ci.yml)"
        )

    def test_every_export_resolves(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None
