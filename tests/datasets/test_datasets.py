"""Tests for synthetic generators, chain snapshots, and bootstrap."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.bootstrap import bootstrap_average, resample
from repro.datasets.chains import ALL_CHAINS, aptos, load_chain, tezos
from repro.datasets.synthetic import (
    constant_weights,
    exponential_weights,
    lognormal_weights,
    mixture_weights,
    normalize_to_total,
    pareto_weights,
    uniform_weights,
    zipf_weights,
)


class TestNormalizeToTotal:
    def test_exact_total(self):
        out = normalize_to_total([1.5, 2.5, 3.0], 100)
        assert sum(out) == 100

    def test_every_party_positive(self):
        out = normalize_to_total([1000.0, 0.001, 0.001], 50)
        assert all(w >= 1 for w in out)

    def test_total_too_small(self):
        with pytest.raises(ValueError):
            normalize_to_total([1.0, 1.0, 1.0], 2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            normalize_to_total([1.0, -1.0], 10)

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            normalize_to_total([0.0, 0.0], 10)

    def test_huge_totals_stay_exact(self):
        total = int(2.52e19)
        out = normalize_to_total([random.Random(0).random() for _ in range(50)], total)
        assert sum(out) == total

    def test_proportionality(self):
        out = normalize_to_total([1.0, 3.0], 400)
        assert out == [100, 300]

    @settings(max_examples=30, deadline=None)
    @given(
        raw=st.lists(
            st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
        total=st.integers(min_value=1, max_value=10**12),
    )
    def test_property_sum_and_nonneg(self, raw, total):
        if total < len(raw):
            return
        out = normalize_to_total(raw, total)
        assert sum(out) == total
        assert all(w >= 0 for w in out)


class TestGenerators:
    @pytest.mark.parametrize(
        "gen",
        [
            lambda: pareto_weights(50, 10**6, seed=1),
            lambda: lognormal_weights(50, 10**6, seed=1),
            lambda: zipf_weights(50, 10**6, seed=1),
            lambda: exponential_weights(50, 10**6, seed=1),
            lambda: uniform_weights(50, 10**6, seed=1),
            lambda: constant_weights(50, 10**6),
        ],
    )
    def test_invariants(self, gen):
        ws = gen()
        assert len(ws) == 50
        assert sum(ws) == 10**6
        assert all(w >= 1 for w in ws)

    def test_determinism(self):
        assert pareto_weights(30, 1000, seed=5) == pareto_weights(30, 1000, seed=5)
        assert pareto_weights(30, 1000, seed=5) != pareto_weights(30, 1000, seed=6)

    def test_pareto_heavier_than_uniform(self):
        """Skew sanity: Pareto's top holder dwarfs uniform's."""
        p = sorted(pareto_weights(200, 10**9, alpha=1.05, seed=2))
        u = sorted(uniform_weights(200, 10**9, seed=2))
        assert p[-1] > u[-1]

    def test_constant_is_flat(self):
        ws = constant_weights(10, 100)
        assert ws == [10] * 10

    def test_mixture_probabilities_validated(self):
        with pytest.raises(ValueError):
            mixture_weights(
                10, 1000, components=[(0.5, lambda rng: 1.0)], seed=0
            )

    def test_mixture_runs(self):
        ws = mixture_weights(
            100,
            10**6,
            components=[(0.1, lambda rng: 1000.0), (0.9, lambda rng: 1.0)],
            seed=3,
        )
        assert sum(ws) == 10**6


class TestChains:
    def test_aggregates_match_paper(self):
        snap = aptos()
        assert snap.n == 104 and snap.total == int(8.47e8)
        snap = tezos()
        assert snap.n == 382 and snap.total == int(6.76e8)

    def test_registry(self):
        assert set(ALL_CHAINS) == {"aptos", "tezos", "filecoin", "algorand"}
        assert load_chain("Tezos").name == "tezos"
        with pytest.raises(KeyError):
            load_chain("bitcoin")

    def test_determinism(self):
        assert aptos().weights == aptos().weights
        assert aptos(seed=1).weights != aptos(seed=2).weights

    def test_skew_present(self):
        """Chain snapshots are heavy-tailed: top 10% of holders own the
        majority of stake (the regime the paper's Section 7 relies on)."""
        snap = tezos()
        ws = sorted(snap.weights, reverse=True)
        top = sum(ws[: max(1, snap.n // 10)])
        assert top > snap.total / 2


class TestBootstrap:
    def test_resample_size(self):
        rng = random.Random(0)
        out = resample([1, 2, 3], 10, rng)
        assert len(out) == 10
        assert set(out) <= {1, 2, 3}

    def test_resample_validation(self):
        with pytest.raises(ValueError):
            resample([1], 0, random.Random(0))

    def test_bootstrap_average(self):
        res = bootstrap_average(
            [1, 2, 3, 4], 8, metric=lambda ws: sum(ws), trials=20, seed=1
        )
        assert res.minimum <= res.mean <= res.maximum
        assert res.trials == 20
        # Mean of sums of 8 draws from mean-2.5 population: near 20.
        assert 12 <= res.mean <= 28

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            bootstrap_average([1], 1, metric=len, trials=0)

    def test_deterministic_for_seed(self):
        a = bootstrap_average([5, 1, 9], 5, metric=max, trials=5, seed=3)
        b = bootstrap_average([5, 1, 9], 5, metric=max, trials=5, seed=3)
        assert a == b
