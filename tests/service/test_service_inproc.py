"""Live-runtime epoch service: rotation over the in-process transport.

Wall-clock pacing makes slot counts timing-dependent here, so the test
asserts structural invariants (completion, at least one rotation,
gap-free log, uniform digests) rather than exact slot placement -- the
sim tests pin those deterministically.
"""

from repro.api import Committee
from repro.service import (
    EpochManager,
    EpochService,
    InprocServiceBackend,
    LoadGenerator,
    ServiceConfig,
)
from repro.service.scenario import drift_schedule_for

WEIGHTS = (40, 30, 20, 10)


def test_inproc_rotation_commits_everything():
    committee = Committee.from_weights(WEIGHTS)
    committee.validate(f_w="1/3")
    manager = EpochManager(drift_schedule_for(WEIGHTS, epochs=3), f_w="1/3")
    config = ServiceConfig(
        f_w="1/3", slot_interval=0.02, slots_per_epoch=2, max_time=30.0
    )
    load = LoadGenerator(200.0, 12, payload_size=16, seed=1)
    service = EpochService(
        InprocServiceBackend(), manager, config, seed=1, load=load
    )
    result = service.run()

    assert result.completed, result.error
    section = result.record()["service"]
    assert section["requests_committed"] == 12
    assert section["rotations"] >= 1

    n = len(WEIGHTS)
    by_slot = {}
    for slot, position, _payload in service.committed_log:
        by_slot.setdefault(slot, []).append(position)
    assert sorted(by_slot) == list(range(len(by_slot)))
    for positions in by_slot.values():
        assert sorted(positions) == list(range(n))

    for digests in service.epoch_party_digests:
        assert len(digests) == n
        assert len(set(digests.values())) == 1

    # Latencies are wall-clock here; they exist and are sane.
    assert section["latency_p50_s"] is not None
    assert 0 < section["latency_p50_s"] < 30.0
