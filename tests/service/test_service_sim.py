"""Sim-backend epoch service: rotation, log integrity, determinism.

The acceptance bar for the service subsystem: at least three committee
generations under open-loop load, a gap-free prefix-consistent committed
log, identical per-party epoch digests, the incremental re-solve fast
path on small stake drifts, and byte-identical records across runs.
"""

import json

import pytest

from repro.api import Committee, CommitteeValidationError
from repro.scenarios import get_scenario, run_scenario
from repro.service import (
    DriftSchedule,
    EpochManager,
    EpochService,
    LoadGenerator,
    ServiceConfig,
    SimServiceBackend,
)
from repro.service.scenario import drift_schedule_for

N = 6


def _run_service(schedule=None, *, epochs=3, requests=36, rate=60.0, seed=0):
    committee = Committee.synthetic("zipf", n=N, total=600, skew=1.2, seed=seed)
    if schedule is None:
        schedule = drift_schedule_for(tuple(committee.int_weights), epochs)
    manager = EpochManager(schedule, f_w="1/3")
    config = ServiceConfig(
        f_w="1/3", slot_interval=0.05, slots_per_epoch=3, max_time=60.0
    )
    load = LoadGenerator(rate, requests, payload_size=32, seed=seed)
    service = EpochService(
        SimServiceBackend(seed=seed), manager, config, seed=seed, load=load
    )
    service.run()
    return service


@pytest.fixture(scope="module")
def service():
    return _run_service()


class TestRotation:
    def test_runs_through_at_least_three_epochs(self, service):
        result = service.result()
        assert result.completed, result.error
        section = result.record()["service"]
        assert section["requests_committed"] == 36
        assert section["rotations"] >= 2
        assert len(section["epochs"]) >= 3

    def test_first_epoch_cold_then_incremental(self, service):
        modes = [e.solver_mode for e in service.metrics.epochs]
        assert modes[0] == "cold"
        assert all(m == "incremental" for m in modes[1:])
        assert service.manager.solver.incremental_hits >= 2

    def test_every_epoch_certifies_one_digest(self, service):
        assert len(service.epoch_party_digests) == len(service.metrics.epochs)
        for digests in service.epoch_party_digests:
            assert len(digests) == N
            assert len(set(digests.values())) == 1


class TestCommittedLog:
    def test_log_is_gap_free(self, service):
        by_slot = {}
        for slot, position, _payload in service.committed_log:
            by_slot.setdefault(slot, []).append(position)
        assert sorted(by_slot) == list(range(len(by_slot)))
        for positions in by_slot.values():
            assert sorted(positions) == list(range(N))

    def test_emission_order_is_prefix_consistent(self, service):
        keys = [(slot, pos) for slot, pos, _ in service.committed_log]
        assert keys == sorted(keys)

    def test_all_requests_appear_exactly_once(self, service):
        from repro.service.service import decode_batch

        load = LoadGenerator(60.0, 36, payload_size=32, seed=0)
        expected = {load.payload(i) for i in range(36)}
        committed = [
            (rid, payload)
            for _, _, batch in service.committed_log
            for rid, payload in decode_batch(batch)
        ]
        assert sorted(rid for rid, _ in committed) == list(range(36))
        assert {payload for _, payload in committed} == expected


class TestDeterminism:
    def test_two_runs_are_byte_identical(self, service):
        again = _run_service()
        a = json.dumps(service.result().record(), sort_keys=True)
        b = json.dumps(again.result().record(), sort_keys=True)
        assert a == b
        assert again.committed_log == service.committed_log


class TestInfeasibleRotation:
    def test_zeroed_committee_fails_with_epoch_context(self):
        committee = Committee.synthetic("zipf", n=N, total=600, skew=1.2, seed=0)
        dead = DriftSchedule(
            initial=tuple(committee.int_weights),
            drifts=tuple((1, i, 0) for i in range(N)),
        )
        service = _run_service(dead)
        result = service.result()
        assert not result.completed
        assert "epoch 1" in result.error
        # Epoch 0's work is preserved: the log up to the failure is intact.
        assert service.metrics.epochs

    def test_out_of_range_drift_index_rejected(self):
        with pytest.raises(CommitteeValidationError):
            DriftSchedule(initial=(10, 10), drifts=((1, 5, 3),)).resolve(1)


class TestHarnessRouting:
    def test_registry_scenario_completes_on_sim(self):
        record = run_scenario(get_scenario("epoch-service"), backend="sim").record()
        assert record["completed"]
        service = record["service"]
        assert service["requests_committed"] == 36
        assert len(service["epochs"]) >= 3

    def test_service_workload_requires_smr(self):
        spec = get_scenario("epoch-service")
        bad = type(spec)(
            name="bad",
            protocol="rbc",
            weights=spec.weights,
            workload=spec.workload,
        )
        with pytest.raises(ValueError, match="smr"):
            run_scenario(bad, backend="sim")
