"""Graceful degradation under overload: bounded submit queue with
reject-with-retry-after, per-request deadline shedding, and the uniform
``{"error": ...}`` reply once the service has drained.

The backpressure loop is closed end to end: the open-loop generator
honors ``retry_after`` and re-submits, so a run with rejections still
commits every request -- later, not never -- and stays byte-identical
across runs (rejection timing is scheduled on the same virtual clock as
everything else).
"""

import dataclasses

from repro.api import Committee
from repro.scenarios import get_scenario, run_scenario
from repro.service import (
    EpochManager,
    EpochService,
    LoadGenerator,
    ServiceConfig,
    SimServiceBackend,
)
from repro.service.scenario import drift_schedule_for

N = 6


def _run_service(*, max_pending=0, request_deadline=0.0, rate=60.0,
                 requests=36, seed=0):
    committee = Committee.synthetic("zipf", n=N, total=600, skew=1.2, seed=seed)
    schedule = drift_schedule_for(tuple(committee.int_weights), 3)
    config = ServiceConfig(
        f_w="1/3",
        slot_interval=0.05,
        slots_per_epoch=3,
        max_time=60.0,
        max_pending=max_pending,
        request_deadline=request_deadline,
    )
    load = LoadGenerator(rate, requests, payload_size=32, seed=seed)
    service = EpochService(
        SimServiceBackend(seed=seed),
        EpochManager(schedule, f_w="1/3"),
        config,
        seed=seed,
        load=load,
    )
    service.run()
    return service


class TestBackpressure:
    def test_bounded_queue_rejects_then_commits_everything(self):
        service = _run_service(max_pending=4, rate=400.0, requests=40)
        result = service.result()
        assert result.completed, result.error
        section = result.record()["service"]
        assert section["requests_rejected"] > 0
        # retry-until-accepted: every request still lands
        assert section["requests_committed"] == 40
        assert service.load.rejections == section["requests_rejected"]
        assert service.load.abandoned == 0

    def test_rejection_reply_carries_retry_after_and_depth(self):
        service = _run_service(max_pending=2, rate=400.0, requests=12)
        # refill the queue manually: the run has finished, so exercise the
        # overload shape on a fresh service instead
        fresh = EpochService(
            SimServiceBackend(seed=1),
            EpochManager(
                drift_schedule_for(
                    tuple(
                        Committee.synthetic(
                            "zipf", n=N, total=600, skew=1.2, seed=1
                        ).int_weights
                    ),
                    1,
                ),
                f_w="1/3",
            ),
            ServiceConfig(f_w="1/3", slot_interval=0.05, max_pending=2),
            seed=1,
        )
        fresh.start()
        assert isinstance(fresh.submit(b"a"), int)
        assert isinstance(fresh.submit(b"b"), int)
        outcome = fresh.submit(b"c")
        assert outcome["error"] == "submit queue full"
        assert outcome["retry_after"] == 0.05
        assert outcome["pending"] == 2
        assert fresh.metrics.rejected == 1
        assert service.result().completed

    def test_unbounded_queue_never_rejects(self):
        service = _run_service(max_pending=0, rate=400.0, requests=40)
        assert service.result().record()["service"]["requests_rejected"] == 0

    def test_backpressure_run_is_byte_deterministic(self):
        a = _run_service(max_pending=4, rate=400.0, requests=40)
        b = _run_service(max_pending=4, rate=400.0, requests=40)
        assert a.result().record() == b.result().record()


class TestDrainedSubmit:
    def test_submit_after_drain_returns_uniform_error_shape(self):
        service = _run_service()
        assert service.finished
        outcome = service.submit(b"late")
        assert set(outcome) == {"error"}
        assert "drained" in outcome["error"]
        # no retry_after: the run is over, retrying is pointless
        assert "retry_after" not in outcome

    def test_load_generator_abandons_on_drained_reply(self):
        class _Backend:
            def __init__(self):
                self.scheduled = []

            def call_later(self, delay, fn):
                self.scheduled.append((delay, fn))

        class _Drained:
            def __init__(self):
                self.backend = _Backend()

            def submit(self, payload):
                return {"error": "service has drained; request not accepted"}

        load = LoadGenerator(100.0, 3, seed=0)
        target = _Drained()
        load.install(target)
        for _delay, fn in list(target.backend.scheduled):
            fn()
        assert load.abandoned == 3
        assert load.rejections == 0
        # nothing re-scheduled: drained replies are terminal
        assert len(target.backend.scheduled) == 3


class TestDeadlineShedding:
    def test_expired_requests_are_shed_not_committed(self):
        # deadline shorter than the slot interval: anything that waits a
        # full slot is already expired when the cut happens
        service = _run_service(
            request_deadline=0.02, rate=400.0, requests=40
        )
        section = service.result().record()["service"]
        assert section["requests_shed"] > 0
        assert (
            section["requests_committed"] + section["requests_shed"]
            <= section["requests_submitted"]
        )

    def test_generous_deadline_sheds_nothing(self):
        service = _run_service(request_deadline=30.0, rate=60.0, requests=36)
        result = service.result()
        assert result.completed, result.error
        section = result.record()["service"]
        assert section["requests_shed"] == 0
        assert section["requests_committed"] == 36


class TestScenarioParams:
    def test_spec_params_reach_the_service_config(self):
        base = get_scenario("epoch-service")
        spec = dataclasses.replace(
            base,
            params=base.params
            + (("max_pending", 3), ("arrival_rate", 400.0)),
        )
        result = run_scenario(spec, backend="sim")
        assert result.completed
        assert result.record()["service"]["requests_rejected"] > 0
        # deterministic like every sim scenario
        assert (
            run_scenario(spec, backend="sim").record_json()
            == result.record_json()
        )
