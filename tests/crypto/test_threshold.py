"""Tests for DLEQ, Feldman VSS, threshold signatures, threshold ElGamal,
and the common coin."""

import random

import pytest

from repro.crypto.common_coin import CommonCoin, WeightedCoin
from repro.crypto.dleq import prove_dleq, verify_dleq
from repro.crypto.feldman import FeldmanVSS
from repro.crypto.group import TEST_GROUP_256 as G
from repro.crypto.threshold_enc import ThresholdElGamal
from repro.crypto.threshold_sig import ThresholdSignatureScheme


class TestGroup:
    def test_membership(self):
        assert G.is_member(G.generator)
        assert G.is_member(G.exp_g(123))
        assert not G.is_member(0)
        assert not G.is_member(G.p)

    def test_hash_to_group_members(self):
        for msg in (b"", b"a", b"hello world", bytes(100)):
            assert G.is_member(G.hash_to_group(msg))

    def test_hash_to_group_deterministic(self):
        assert G.hash_to_group(b"x") == G.hash_to_group(b"x")
        assert G.hash_to_group(b"x") != G.hash_to_group(b"y")

    def test_power_reduces_exponent(self):
        assert G.power(G.generator, G.order + 5) == G.power(G.generator, 5)

    def test_inv(self):
        a = G.exp_g(9999)
        assert G.mul(a, G.inv(a)) == 1

    def test_exponent_field_is_prime_order(self):
        assert G.exponent_field.modulus == G.order


class TestDleq:
    def test_roundtrip(self):
        rng = random.Random(0)
        x = G.random_exponent(rng)
        h = G.hash_to_group(b"base2")
        y1, y2, proof = prove_dleq(G, x, G.generator, h, rng)
        assert y1 == G.exp_g(x)
        assert y2 == G.power(h, x)
        assert verify_dleq(G, G.generator, y1, h, y2, proof)

    def test_wrong_statement_rejected(self):
        rng = random.Random(0)
        x = G.random_exponent(rng)
        h = G.hash_to_group(b"base2")
        y1, y2, proof = prove_dleq(G, x, G.generator, h, rng)
        assert not verify_dleq(G, G.generator, y1, h, G.mul(y2, h), proof)
        assert not verify_dleq(G, G.generator, G.mul(y1, h), h, y2, proof)

    def test_nonmember_rejected(self):
        rng = random.Random(0)
        x = G.random_exponent(rng)
        h = G.hash_to_group(b"b")
        y1, y2, proof = prove_dleq(G, x, G.generator, h, rng)
        assert not verify_dleq(G, G.generator, 0, h, y2, proof)


class TestFeldman:
    def test_all_shares_verify(self):
        rng = random.Random(1)
        vss = FeldmanVSS(G, 6, 3)
        dealing = vss.deal(31337, rng)
        for share in dealing.shares:
            assert dealing.commitment.verify_share(share)

    def test_tampered_share_rejected(self):
        rng = random.Random(1)
        vss = FeldmanVSS(G, 5, 2)
        dealing = vss.deal(7, rng)
        from repro.crypto.shamir import Share

        bad = Share(index=1, value=(dealing.shares[0].value + 1) % G.order)
        assert not dealing.commitment.verify_share(bad)

    def test_reconstruct(self):
        rng = random.Random(2)
        vss = FeldmanVSS(G, 7, 4)
        dealing = vss.deal(55555, rng)
        assert vss.reconstruct(dealing.shares[2:6]) == 55555

    def test_public_key_is_g_to_secret(self):
        rng = random.Random(3)
        vss = FeldmanVSS(G, 4, 2)
        dealing = vss.deal(777, rng)
        assert dealing.commitment.public_key == G.exp_g(777)

    def test_insufficient_shares(self):
        rng = random.Random(4)
        vss = FeldmanVSS(G, 4, 3)
        dealing = vss.deal(1, rng)
        with pytest.raises(ValueError):
            vss.reconstruct(dealing.shares[:2])


class TestThresholdSignatures:
    def _scheme(self, n=5, k=3, seed=0):
        rng = random.Random(seed)
        scheme = ThresholdSignatureScheme(G, n, k)
        scheme.keygen(rng)
        return scheme, rng

    def test_share_verification(self):
        scheme, rng = self._scheme()
        share = scheme.sign_share(2, b"msg", rng)
        assert scheme.verify_share(share, b"msg")
        assert not scheme.verify_share(share, b"other")

    def test_unknown_signer_rejected(self):
        scheme, rng = self._scheme()
        share = scheme.sign_share(1, b"m", rng)
        from repro.crypto.threshold_sig import SignatureShare

        fake = SignatureShare(index=99, value=share.value, proof=share.proof)
        assert not scheme.verify_share(fake, b"m")

    def test_uniqueness(self):
        """The signature is independent of the combining share subset --
        the property randomness beacons rely on (Section 4.1)."""
        scheme, rng = self._scheme(n=6, k=3)
        shares = [scheme.sign_share(i, b"epoch-9", rng) for i in range(1, 7)]
        sig_a = scheme.combine(shares[:3], b"epoch-9")
        sig_b = scheme.combine(shares[3:], b"epoch-9")
        sig_c = scheme.combine([shares[0], shares[2], shares[4]], b"epoch-9")
        assert sig_a == sig_b == sig_c
        assert scheme.verify(sig_a, b"epoch-9")

    def test_combine_rejects_invalid_share(self):
        scheme, rng = self._scheme()
        shares = [scheme.sign_share(i, b"m", rng) for i in (1, 2)]
        from repro.crypto.threshold_sig import SignatureShare

        bad = SignatureShare(index=3, value=G.generator, proof=shares[0].proof)
        with pytest.raises(ValueError):
            scheme.combine(shares + [bad], b"m")

    def test_combine_needs_k_distinct(self):
        scheme, rng = self._scheme()
        s1 = scheme.sign_share(1, b"m", rng)
        with pytest.raises(ValueError):
            scheme.combine([s1, s1, s1], b"m")

    def test_verify_rejects_wrong_message(self):
        scheme, rng = self._scheme()
        shares = [scheme.sign_share(i, b"m1", rng) for i in (1, 2, 3)]
        sig = scheme.combine(shares, b"m1")
        assert not scheme.verify(sig, b"m2")

    def test_keygen_required(self):
        scheme = ThresholdSignatureScheme(G, 3, 2)
        with pytest.raises(RuntimeError):
            _ = scheme.keys


class TestThresholdElGamal:
    def _scheme(self, n=5, k=3, seed=0):
        rng = random.Random(seed)
        scheme = ThresholdElGamal(G, n, k)
        scheme.keygen(rng)
        return scheme, rng

    def test_roundtrip(self):
        scheme, rng = self._scheme()
        msg = G.exp_g(123456)
        ct = scheme.encrypt(msg, rng)
        shares = [scheme.decryption_share(i, ct, rng) for i in (1, 3, 5)]
        assert scheme.combine(shares, ct) == msg

    def test_any_k_shares_work(self):
        scheme, rng = self._scheme(n=6, k=2)
        msg = G.hash_to_group(b"plain")
        ct = scheme.encrypt(msg, rng)
        for pair in ((1, 2), (3, 6), (2, 5)):
            shares = [scheme.decryption_share(i, ct, rng) for i in pair]
            assert scheme.combine(shares, ct) == msg

    def test_share_verification(self):
        scheme, rng = self._scheme()
        ct = scheme.encrypt(G.exp_g(1), rng)
        share = scheme.decryption_share(2, ct, rng)
        assert scheme.verify_share(share, ct)
        other_ct = scheme.encrypt(G.exp_g(2), rng)
        assert not scheme.verify_share(share, other_ct)

    def test_nonmember_message_rejected(self):
        scheme, rng = self._scheme()
        with pytest.raises(ValueError):
            scheme.encrypt(0, rng)

    def test_insufficient_shares(self):
        scheme, rng = self._scheme()
        ct = scheme.encrypt(G.exp_g(5), rng)
        shares = [scheme.decryption_share(1, ct, rng)]
        with pytest.raises(ValueError):
            scheme.combine(shares, ct)


class TestCommonCoin:
    def test_agreement_across_share_subsets(self):
        rng = random.Random(0)
        coin = CommonCoin(G, n=6, k=3, rng=rng)
        shares = [coin.share(i, epoch=4, rng=rng) for i in range(1, 7)]
        v1 = coin.open(shares[:3], 4)
        v2 = coin.open(shares[3:], 4)
        assert v1 == v2

    def test_epochs_differ(self):
        rng = random.Random(0)
        coin = CommonCoin(G, n=4, k=2, rng=rng)
        shares_a = [coin.share(i, 1, rng) for i in (1, 2)]
        shares_b = [coin.share(i, 2, rng) for i in (1, 2)]
        assert coin.open(shares_a, 1) != coin.open(shares_b, 2)

    def test_share_verification(self):
        rng = random.Random(0)
        coin = CommonCoin(G, n=4, k=2, rng=rng)
        share = coin.share(1, 9, rng)
        assert coin.verify_share(share, 9)
        assert not coin.verify_share(share, 10)

    def test_toss_is_bit(self):
        rng = random.Random(0)
        coin = CommonCoin(G, n=4, k=2, rng=rng)
        shares = [coin.share(i, 3, rng) for i in (1, 2)]
        assert coin.toss(shares, 3) in (0, 1)


class TestWeightedCoin:
    def test_honest_coalition_opens_adversary_cannot(self):
        from repro import WeightRestriction, solve
        from repro.sim.adversary import most_tickets_under

        weights = [40, 25, 15, 10, 5, 3, 1, 1]
        result = solve(WeightRestriction("1/3", "1/2"), weights)
        rng = random.Random(0)
        coin = WeightedCoin(G, result.assignment, "1/2", rng)
        corrupt = most_tickets_under(weights, result.assignment.to_list(), "1/3")
        honest = [i for i in range(len(weights)) if i not in corrupt]
        assert coin.coalition_can_open(honest)
        assert not coin.coalition_can_open(sorted(corrupt))
        value = coin.open_with_parties(honest, epoch=1, rng=rng)
        assert isinstance(value, int)

    def test_zero_assignment_rejected(self):
        with pytest.raises(ValueError):
            WeightedCoin(G, [0, 0], "1/2", random.Random(0))
