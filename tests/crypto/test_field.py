"""Unit and property tests for GF(p) arithmetic."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import DEFAULT_FIELD, PrimeField

SMALL = PrimeField(97)


class TestConstruction:
    def test_rejects_composite(self):
        with pytest.raises(ValueError):
            PrimeField(91)  # 7 * 13

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            PrimeField(1)

    def test_accepts_large_prime(self):
        assert DEFAULT_FIELD.modulus.bit_length() == 256


class TestArithmetic:
    def test_element_canonicalizes(self):
        assert SMALL.element(100) == 3
        assert SMALL.element(-1) == 96

    def test_add_sub_roundtrip(self):
        assert SMALL.sub(SMALL.add(40, 80), 80) == 40

    def test_neg(self):
        assert SMALL.add(5, SMALL.neg(5)) == 0

    def test_inverse(self):
        for a in range(1, 97):
            assert SMALL.mul(a, SMALL.inv(a)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            SMALL.inv(0)
        with pytest.raises(ZeroDivisionError):
            SMALL.inv(97)  # canonicalizes to zero

    def test_div(self):
        assert SMALL.mul(SMALL.div(10, 7), 7) == 10

    def test_pow_matches_python(self):
        assert SMALL.pow(3, 45) == pow(3, 45, 97)

    def test_sum_prod(self):
        assert SMALL.sum([96, 1, 5]) == 5
        assert SMALL.prod([2, 3, 4]) == 24

    def test_contains(self):
        assert SMALL.contains(0) and SMALL.contains(96)
        assert not SMALL.contains(97) and not SMALL.contains(-1)


class TestSampling:
    def test_random_element_in_range(self):
        rng = random.Random(0)
        for _ in range(50):
            assert SMALL.contains(SMALL.random_element(rng))

    def test_random_nonzero(self):
        rng = random.Random(0)
        for _ in range(50):
            assert SMALL.random_nonzero(rng) != 0


@settings(max_examples=60, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=10**9),
    b=st.integers(min_value=0, max_value=10**9),
    c=st.integers(min_value=0, max_value=10**9),
)
def test_field_axioms(a, b, c):
    """Associativity, commutativity, distributivity mod p."""
    f = SMALL
    a, b, c = f.element(a), f.element(b), f.element(c)
    assert f.add(a, b) == f.add(b, a)
    assert f.mul(a, b) == f.mul(b, a)
    assert f.add(f.add(a, b), c) == f.add(a, f.add(b, c))
    assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))
    assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))
