"""Tests for polynomials and Lagrange interpolation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.field import PrimeField
from repro.crypto.polynomial import Polynomial, interpolate_at, lagrange_coefficients_at

F = PrimeField(101)


class TestPolynomial:
    def test_canonical_strips_leading_zeros(self):
        p = Polynomial(F, (1, 2, 0, 0))
        assert p.coefficients == (1, 2)
        assert p.degree == 1

    def test_zero_polynomial(self):
        p = Polynomial(F, (0, 0))
        assert p.degree == -1
        assert p.evaluate(55) == 0

    def test_evaluate_horner(self):
        p = Polynomial(F, (3, 2, 1))  # 3 + 2x + x^2
        assert p.evaluate(5) == (3 + 10 + 25) % 101

    def test_addition(self):
        a = Polynomial(F, (1, 2))
        b = Polynomial(F, (3, 99, 5))
        s = a + b
        for x in range(10):
            assert s.evaluate(x) == (a.evaluate(x) + b.evaluate(x)) % 101

    def test_addition_cancels(self):
        a = Polynomial(F, (1, 100))
        b = Polynomial(F, (0, 1))
        assert (a + b).degree == 0

    def test_multiplication(self):
        a = Polynomial(F, (1, 1))
        b = Polynomial(F, (100, 1))  # (x+1)(x-1) = x^2 - 1
        prod = a * b
        for x in range(10):
            assert prod.evaluate(x) == (x * x - 1) % 101

    def test_mul_by_zero(self):
        a = Polynomial(F, (1, 2, 3))
        z = Polynomial(F, ())
        assert (a * z).degree == -1

    def test_mixed_fields_rejected(self):
        other = PrimeField(97)
        with pytest.raises(ValueError):
            Polynomial(F, (1,)) + Polynomial(other, (1,))

    def test_random_degree_and_constant(self):
        rng = random.Random(0)
        p = Polynomial.random(F, 4, rng, constant=17)
        assert p.degree == 4
        assert p.evaluate(0) == 17

    def test_random_degree_zero(self):
        rng = random.Random(0)
        p = Polynomial.random(F, 0, rng, constant=5)
        assert p.coefficients == (5,)

    def test_random_negative_degree_rejected(self):
        with pytest.raises(ValueError):
            Polynomial.random(F, -1, random.Random(0))


class TestLagrange:
    def test_coefficients_reconstruct_constant(self):
        # f(x) = 7: all interpolations yield 7.
        xs = [1, 2, 3]
        lams = lagrange_coefficients_at(F, xs, 0)
        assert sum(lam * 7 for lam in lams) % 101 == 7

    def test_interpolate_at_zero(self):
        rng = random.Random(1)
        poly = Polynomial.random(F, 3, rng, constant=42)
        points = [(x, poly.evaluate(x)) for x in (2, 5, 7, 11)]
        assert interpolate_at(F, points, 0) == 42

    def test_interpolate_at_arbitrary_point(self):
        rng = random.Random(2)
        poly = Polynomial.random(F, 2, rng)
        points = [(x, poly.evaluate(x)) for x in (1, 2, 3)]
        for target in (0, 4, 50):
            assert interpolate_at(F, points, target) == poly.evaluate(target)

    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError):
            lagrange_coefficients_at(F, [1, 1, 2])

    @settings(max_examples=40, deadline=None)
    @given(
        degree=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_property_roundtrip(self, degree, seed):
        rng = random.Random(seed)
        poly = Polynomial.random(F, degree, rng)
        xs = rng.sample(range(1, 101), degree + 1)
        points = [(x, poly.evaluate(x)) for x in xs]
        assert interpolate_at(F, points, 0) == poly.evaluate(0)
