"""Tests for plain and weighted Shamir secret sharing."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import WeightRestriction, solve
from repro.crypto.field import PrimeField
from repro.crypto.shamir import SecretSharing, deal_weighted
from repro.sim.adversary import heaviest_under, most_tickets_under

F = PrimeField(2**61 - 1)


class TestSecretSharing:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SecretSharing(3, 4)
        with pytest.raises(ValueError):
            SecretSharing(3, 0)

    def test_field_too_small(self):
        with pytest.raises(ValueError):
            SecretSharing(200, 2, PrimeField(101))

    def test_roundtrip(self):
        rng = random.Random(0)
        ss = SecretSharing(7, 4, F)
        shares = ss.deal(123456789, rng)
        assert ss.reconstruct(shares[:4]) == 123456789
        assert ss.reconstruct(shares[3:]) == 123456789

    def test_insufficient_shares_rejected(self):
        rng = random.Random(0)
        ss = SecretSharing(5, 3, F)
        shares = ss.deal(42, rng)
        with pytest.raises(ValueError):
            ss.reconstruct(shares[:2])

    def test_duplicate_shares_do_not_count(self):
        rng = random.Random(0)
        ss = SecretSharing(5, 3, F)
        shares = ss.deal(42, rng)
        with pytest.raises(ValueError):
            ss.reconstruct([shares[0], shares[0], shares[1]])

    def test_k_minus_one_shares_leak_nothing(self):
        """Information-theoretic check: for any k-1 shares, every candidate
        secret remains consistent with some polynomial."""
        rng = random.Random(3)
        ss = SecretSharing(4, 2, PrimeField(13))
        shares = ss.deal(5, rng)
        one = shares[0]
        # With one share of a degree-1 polynomial, any secret s is
        # consistent: the line through (0, s) and (one.index, one.value).
        for candidate in range(13):
            slope = (one.value - candidate) * pow(one.index, 11, 13) % 13
            assert (candidate + slope * one.index) % 13 == one.value

    @settings(max_examples=30, deadline=None)
    @given(
        secret=st.integers(min_value=0, max_value=2**40),
        n=st.integers(min_value=1, max_value=10),
        data=st.data(),
    )
    def test_property_any_k_subset_reconstructs(self, secret, n, data):
        k = data.draw(st.integers(min_value=1, max_value=n))
        rng = random.Random(7)
        ss = SecretSharing(n, k, F)
        shares = ss.deal(secret, rng)
        subset = data.draw(
            st.permutations(shares).map(lambda p: list(p)[:k])
        )
        assert ss.reconstruct(subset) == secret


class TestWeightedSharing:
    WEIGHTS = [40, 25, 15, 10, 5, 3, 1, 1]

    def _setup(self, alpha_w="1/3", alpha_n="1/2"):
        result = solve(WeightRestriction(alpha_w, alpha_n), self.WEIGHTS)
        rng = random.Random(1)
        dealt = deal_weighted(987654321, result.assignment, alpha_n, rng, F)
        return result, dealt

    def test_threshold_definition(self):
        result, dealt = self._setup()
        import math

        assert dealt.threshold == math.ceil(Fraction(1, 2) * result.total_tickets)
        assert dealt.total_shares == result.total_tickets

    def test_share_counts_match_tickets(self):
        result, dealt = self._setup()
        for i, t in enumerate(result.assignment):
            assert len(dealt.shares_by_party[i]) == t

    def test_honest_majority_reconstructs(self):
        """Complement of any adversary below alpha_w can reconstruct."""
        result, dealt = self._setup()
        corrupt = most_tickets_under(self.WEIGHTS, result.assignment.to_list(), "1/3")
        honest = [i for i in range(len(self.WEIGHTS)) if i not in corrupt]
        assert dealt.can_reconstruct(honest)
        assert dealt.reconstruct(honest) == 987654321

    def test_adversary_below_threshold_cannot(self):
        """The most ticket-greedy adversary under the weight budget holds
        fewer shares than the threshold (the WR guarantee)."""
        result, dealt = self._setup()
        corrupt = most_tickets_under(self.WEIGHTS, result.assignment.to_list(), "1/3")
        held = len(dealt.shares_of(sorted(corrupt)))
        assert held < dealt.threshold
        with pytest.raises(ValueError):
            dealt.reconstruct(sorted(corrupt))

    def test_heaviest_adversary_cannot(self):
        result, dealt = self._setup()
        corrupt = heaviest_under(self.WEIGHTS, "1/3")
        assert not dealt.can_reconstruct(sorted(corrupt))

    def test_zero_assignment_rejected(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            deal_weighted(1, [0, 0], "1/2", rng, F)

    def test_bad_alpha_rejected(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            deal_weighted(1, [1, 1], "3/2", rng, F)
