"""Batched crypto engine tests: the per-share path is the correctness
oracle and the batch engine must agree with it everywhere -- on honest
inputs, on malformed Byzantine inputs, and through the adversarial
bisection path.
"""

import random

import pytest

from repro.crypto.common_coin import CommonCoin, WeightedCoin
from repro.crypto.dleq import (
    DleqProof,
    prove_dleq,
    verify_dleq,
    verify_dleq_batch,
)
from repro.crypto.feldman import FeldmanVSS
from repro.crypto.group import RFC3526_GROUP_2048, TEST_GROUP_256, SchnorrGroup
from repro.crypto.shamir import Share
from repro.crypto.threshold_enc import ThresholdElGamal
from repro.crypto.threshold_sig import SignatureShare, ThresholdSignatureScheme

G = TEST_GROUP_256

#: both shipped groups; the big one only gets small draws to stay fast
GROUPS = [TEST_GROUP_256, RFC3526_GROUP_2048]


class TestEngine:
    def test_exp_g_matches_pow(self):
        rng = random.Random(0)
        for group in GROUPS:
            for _ in range(8):
                e = rng.randrange(2 * group.order)  # includes reduction cases
                assert group.exp_g(e) == pow(group.generator, e % group.order, group.p)
        assert G.exp_g(0) == 1

    def test_fast_power_matches_pow_and_promotes(self):
        rng = random.Random(1)
        base = G.hash_to_group(b"recurring-base")
        # Enough uses to cross the table-promotion threshold.
        for _ in range(12):
            e = rng.randrange(G.order)
            assert G.fast_power(base, e) == pow(base, e, G.p)

    def test_multi_exp_matches_naive_product(self):
        rng = random.Random(2)
        for group in GROUPS:
            draws = 6 if group is G else 2
            for n in (1, 2, 7):
                for _ in range(draws if group is G else 1):
                    pairs = [
                        (
                            group.hash_to_group(rng.randbytes(8)),
                            rng.randrange(group.order),
                        )
                        for _ in range(n)
                    ]
                    naive = 1
                    for b, e in pairs:
                        naive = naive * pow(b, e, group.p) % group.p
                    assert group.multi_exp(pairs) == naive

    def test_multi_exp_edge_cases(self):
        assert G.multi_exp([]) == 1
        assert G.multi_exp([(G.exp_g(9), 0)]) == 1
        assert G.multi_exp([(1, 12345)]) == 1
        assert G.multi_exp([(0, 3)]) == 0
        # Exponents reduce mod q.
        b = G.exp_g(3)
        assert G.multi_exp([(b, G.order + 2)]) == G.power(b, 2)

    def test_is_member_fast_agrees_with_euler(self):
        rng = random.Random(3)
        for _ in range(300):
            a = rng.randrange(0, G.p + 2)
            assert G.is_member_fast(a) == G.is_member(a), a
        # The generator's coset partner -g is the canonical non-member.
        assert not G.is_member_fast(G.p - G.generator)
        for group in GROUPS:
            a = group.hash_to_group(b"member")
            assert group.is_member_fast(a)
            assert not group.is_member_fast(group.p - a)

    def test_hash_to_group_cached_and_deterministic(self):
        assert G.hash_to_group(b"cache-me") == G.hash_to_group(b"cache-me")
        other = SchnorrGroup(p=G.p, generator=G.generator)
        assert other.hash_to_group(b"cache-me") == G.hash_to_group(b"cache-me")


class TestBatchDleq:
    def _statements(self, group, n, seed=0):
        rng = random.Random(seed)
        h = group.hash_to_group(b"batch-base")
        stmts = []
        for _ in range(n):
            x = group.random_exponent(rng)
            y1, y2, proof = prove_dleq(group, x, group.generator, h, rng)
            stmts.append((y1, y2, proof))
        return h, stmts, rng

    @pytest.mark.parametrize("group", GROUPS, ids=["256", "2048"])
    def test_honest_batch_verifies(self, group):
        n = 16 if group is G else 4
        h, stmts, rng = self._statements(group, n)
        assert verify_dleq_batch(group, group.generator, h, stmts, rng=rng) == [
            True
        ] * n

    def test_batch_equals_oracle_property(self):
        """Randomized corruption sweep: the batch verdict must match the
        per-share oracle statement for statement, on every draw."""
        rng = random.Random(7)
        h, stmts, _ = self._statements(G, 24, seed=7)
        for trial in range(6):
            mutated = list(stmts)
            for _ in range(rng.randrange(0, 4)):
                i = rng.randrange(len(mutated))
                y1, y2, pr = mutated[i]
                kind = rng.randrange(5)
                if kind == 0:  # wrong share value
                    mutated[i] = (y1, G.mul(y2, h), pr)
                elif kind == 1:  # non-member share value
                    mutated[i] = (y1, G.p - y2, pr)
                elif kind == 2:  # out-of-range response
                    mutated[i] = (
                        y1,
                        y2,
                        DleqProof(pr.challenge, pr.response + G.order, pr.commit1, pr.commit2),
                    )
                elif kind == 3:  # tampered commitment
                    mutated[i] = (
                        y1,
                        y2,
                        DleqProof(pr.challenge, pr.response, G.mul(pr.commit1, h), pr.commit2),
                    )
                else:  # commitment-stripped honest proof (oracle fallback)
                    mutated[i] = (y1, y2, DleqProof(pr.challenge, pr.response))
            got = verify_dleq_batch(G, G.generator, h, mutated, rng=rng)
            want = [
                verify_dleq(G, G.generator, y1, h, y2, pr)
                for (y1, y2, pr) in mutated
            ]
            assert got == want, f"trial {trial}"

    def test_one_bad_share_in_64_is_bisected_out(self):
        """The acceptance scenario: one corrupted share hidden in a batch
        of 64 is located and the remaining 63 still verify."""
        h, stmts, rng = self._statements(G, 64, seed=11)
        bad_pos = 41
        y1, y2, pr = stmts[bad_pos]
        stmts[bad_pos] = (y1, G.mul(y2, G.exp_g(1)), pr)
        got = verify_dleq_batch(G, G.generator, h, stmts, rng=rng)
        assert got == [i != bad_pos for i in range(64)]

    def test_empty_batch(self):
        assert verify_dleq_batch(G, G.generator, G.hash_to_group(b"h"), []) == []

    def _forged(self, h, rng):
        """A forgery that survives every cheap per-item check (range,
        membership, Fiat-Shamir recomputation) and dies only in the
        random-linear-combination aggregate -- the worst-case input for
        the bisection."""
        from repro.crypto.dleq import _challenge

        x = G.random_exponent(rng)
        y1 = G.exp_g(x)
        y2 = G.fast_power(h, G.random_exponent(rng))
        a1 = G.exp_g(G.random_exponent(rng))
        a2 = G.fast_power(h, G.random_exponent(rng))
        c = _challenge(G, G.generator, y1, h, y2, a1, a2)
        return (y1, y2, DleqProof(c, G.random_exponent(rng), a1, a2))

    def _count_oracle_calls(self, monkeypatch):
        import repro.crypto.dleq as dleq_mod

        calls = []
        real = dleq_mod.verify_dleq

        def counting(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(dleq_mod, "verify_dleq", counting)
        return calls

    def test_all_shares_bad_degrades_to_one_oracle_call_each(self, monkeypatch):
        """Bisection worst case: every share forged.  Every aggregate
        fails, the recursion reaches every leaf, and each share is
        settled by exactly one per-share oracle call -- no looping, no
        re-verification."""
        rng = random.Random(23)
        h = G.hash_to_group(b"batch-base")
        n = 16  # power of two: the bisection tree is perfectly balanced
        stmts = [self._forged(h, rng) for _ in range(n)]
        calls = self._count_oracle_calls(monkeypatch)
        got = verify_dleq_batch(G, G.generator, h, stmts, rng=rng)
        assert got == [False] * n
        assert len(calls) == n

    def test_exactly_one_good_share_survives_the_flood(self, monkeypatch):
        """The other worst case: one honest share drowning in forgeries.
        Every chunk above leaf size contains a forgery, so the bisection
        still bottoms out at one oracle call per share -- and the honest
        share's verdict must match the per-share oracle (True)."""
        rng = random.Random(29)
        h = G.hash_to_group(b"batch-base")
        n, good_pos = 16, 7
        stmts = [self._forged(h, rng) for _ in range(n)]
        x = G.random_exponent(rng)
        y1, y2, proof = prove_dleq(G, x, G.generator, h, rng)
        stmts[good_pos] = (y1, y2, proof)
        calls = self._count_oracle_calls(monkeypatch)
        got = verify_dleq_batch(G, G.generator, h, stmts, rng=rng)
        assert got == [i == good_pos for i in range(n)]
        assert len(calls) == n

    def test_forged_share_passes_every_cheap_check(self):
        # The forgery helper must actually reach the aggregate: its
        # per-share oracle verdict is False, but a batch of size one is
        # the aggregate itself -- both paths must reject it.
        rng = random.Random(31)
        h = G.hash_to_group(b"batch-base")
        y1, y2, proof = self._forged(h, rng)
        assert proof.commit1 is not None  # not the oracle-fallback path
        assert not verify_dleq(G, G.generator, y1, h, y2, proof)
        assert verify_dleq_batch(G, G.generator, h, [(y1, y2, proof)], rng=rng) == [
            False
        ]

    def test_identity_bases_rejected(self):
        h, stmts, rng = self._statements(G, 3)
        assert verify_dleq_batch(G, 1, h, stmts, rng=rng) == [False] * 3
        assert verify_dleq_batch(G, G.generator, G.p - 1, stmts, rng=rng) == [False] * 3

    def test_hardened_oracle_rejects_malformed(self):
        h, stmts, _ = self._statements(G, 1)
        y1, y2, pr = stmts[0]
        assert verify_dleq(G, G.generator, y1, h, y2, pr)
        # Exponent-range malleability (r + q) is rejected, not reduced.
        assert not verify_dleq(
            G, G.generator, y1, h, y2, DleqProof(pr.challenge, pr.response + G.order)
        )
        assert not verify_dleq(
            G, G.generator, y1, h, y2, DleqProof(pr.challenge + G.order, pr.response)
        )
        assert not verify_dleq(
            G, G.generator, y1, h, y2, DleqProof(pr.challenge, -1)
        )
        # Identity / order-2 bases.
        assert not verify_dleq(G, 1, y1, h, y2, pr)
        assert not verify_dleq(G, 0, y1, h, y2, pr)
        assert not verify_dleq(G, G.generator, y1, G.p - 1, y2, pr)


class TestSchemeBatch:
    def _scheme(self, n=12, k=5, seed=0):
        rng = random.Random(seed)
        scheme = ThresholdSignatureScheme(G, n, k)
        scheme.keygen(rng)
        return scheme, rng

    def test_verify_shares_batch_equals_per_share(self):
        scheme, rng = self._scheme()
        shares = [scheme.sign_share(i, b"epoch-1", rng) for i in range(1, 13)]
        # Corrupt two, fake one index.
        shares[3] = SignatureShare(
            index=shares[3].index, value=G.mul(shares[3].value, G.exp_g(2)),
            proof=shares[3].proof,
        )
        shares[8] = SignatureShare(index=99, value=shares[8].value, proof=shares[8].proof)
        got = scheme.verify_shares_batch(shares, b"epoch-1")
        want = [scheme.verify_share(s, b"epoch-1") for s in shares]
        assert got == want
        assert got.count(False) == 2

    def test_combine_uses_batch_and_matches_seed_combine(self):
        scheme, rng = self._scheme(n=8, k=4, seed=2)
        shares = [scheme.sign_share(i, b"m", rng) for i in range(1, 9)]
        sigma = scheme.combine(shares[:4], b"m")
        # Seed-path combine: scalar pow chain over the same coefficients.
        from repro.crypto.polynomial import lagrange_coefficients_at

        lambdas = lagrange_coefficients_at(scheme.field, [s.index for s in shares[:4]], 0)
        seed_sigma = 1
        for lam, share in zip(lambdas, shares[:4]):
            seed_sigma = seed_sigma * G.power(share.value, lam) % G.p
        assert sigma == seed_sigma
        assert scheme.verify(sigma, b"m")

    def test_combine_rejects_and_names_bad_share(self):
        scheme, rng = self._scheme(n=6, k=3, seed=3)
        shares = [scheme.sign_share(i, b"m", rng) for i in (1, 2)]
        bad = SignatureShare(index=5, value=G.generator, proof=shares[0].proof)
        with pytest.raises(ValueError, match="from 5"):
            scheme.combine(shares + [bad], b"m")

    def test_message_point_lru(self):
        scheme, _ = self._scheme(n=3, k=2, seed=4)
        h = scheme.hash_message(b"once")
        assert scheme.hash_message(b"once") == h
        info = scheme._message_point.cache_info()
        assert info.hits >= 1

    def test_elgamal_batch_and_combine(self):
        rng = random.Random(5)
        scheme = ThresholdElGamal(G, 9, 4)
        scheme.keygen(rng)
        msg = G.hash_to_group(b"plaintext")
        ct = scheme.encrypt(msg, rng)
        shares = [scheme.decryption_share(i, ct, rng) for i in range(1, 10)]
        got = scheme.verify_shares_batch(shares, ct)
        assert got == [True] * 9
        from repro.crypto.threshold_enc import DecryptionShare

        shares[2] = DecryptionShare(
            index=shares[2].index, value=G.mul(shares[2].value, msg), proof=shares[2].proof
        )
        got = scheme.verify_shares_batch(shares, ct)
        want = [scheme.verify_share(s, ct) for s in shares]
        assert got == want and not got[2]
        good = [s for s, ok in zip(shares, got) if ok]
        assert scheme.combine(good, ct) == msg

    def test_feldman_batch_equals_per_share(self):
        rng = random.Random(6)
        vss = FeldmanVSS(G, 10, 4)
        dealing = vss.deal(424242, rng)
        shares = list(dealing.shares)
        shares[7] = Share(index=shares[7].index, value=(shares[7].value + 1) % G.order)
        got = dealing.commitment.verify_shares_batch(shares, rng=rng)
        want = [dealing.commitment.verify_share(s) for s in shares]
        assert got == want
        assert got == [i != 7 for i in range(10)]


class TestBatchCoin:
    def test_weighted_coin_1024_tickets_batch_equals_oracle(self):
        """Acceptance: a weighted coin open at >= 1024 tickets completes
        through the batch path with a bit-identical value to the
        per-share oracle."""
        rng = random.Random(9)
        tickets = [8] * 128  # T = 1024 virtual signers
        coin = WeightedCoin(G, tickets, "1/2", rng)
        assert coin.total_shares == 1024 and coin.threshold == 512
        epoch = 1
        shares = []
        for party in range(128):  # all 1024 tickets
            shares.extend(coin.shares_of_party(party, epoch, rng))
        verdicts = coin.verify_shares(shares, epoch, rng=rng)
        assert all(verdicts)
        batch_value = coin.coin.open(shares[:640], epoch, verify=False)
        # Oracle: per-share verification loop + scalar pow combine over a
        # different share subset (uniqueness makes the value identical).
        oracle_shares = shares[512 : 512 + coin.threshold]
        message = coin.coin._epoch_message(epoch)
        assert all(
            coin.coin.scheme.verify_share(s, message=message) for s in oracle_shares[:4]
        )
        from repro.crypto.polynomial import lagrange_coefficients_at

        lambdas = lagrange_coefficients_at(
            coin.coin.scheme.field, [s.index for s in oracle_shares], 0
        )
        sigma = 1
        for lam, share in zip(lambdas, oracle_shares):
            sigma = sigma * G.power(share.value, lam) % G.p
        import hashlib

        digest = hashlib.sha256(
            b"coin-value|" + sigma.to_bytes((sigma.bit_length() + 7) // 8 or 1, "big")
        ).digest()
        assert batch_value == int.from_bytes(digest, "big")

    def test_coin_batch_open_with_byzantine_share(self):
        rng = random.Random(10)
        coin = CommonCoin(G, n=8, k=4, rng=rng)
        shares = [coin.share(i, epoch=2, rng=rng) for i in range(1, 7)]
        shares[1] = SignatureShare(
            index=shares[1].index,
            value=G.mul(shares[1].value, G.exp_g(7)),
            proof=shares[1].proof,
        )
        verdicts = coin.verify_shares(shares, 2, rng=rng)
        assert verdicts == [True, False, True, True, True, True]
        good = [s for s, ok in zip(shares, verdicts) if ok]
        value = coin.open(good, 2, verify=False)
        assert value == coin.open([s for s in shares if s.index != shares[1].index], 2)


class TestBatchBeaconProtocol:
    def test_beacon_discards_byzantine_share_and_still_opens(self):
        """A garbled share injected into the beacon traffic is isolated
        by the batch verifier at the quorum point; honest shares open."""
        from repro.protocols.common_coin import BeaconParty, CoinShareMsg
        from repro.sim import build_world
        from repro.weighted.transform import blunt_setup

        weights = [40, 25, 15, 10, 5, 3, 1, 1]
        rng = random.Random(3)
        setup = blunt_setup(weights, "1/3", "1/2")
        coin = WeightedCoin(G, setup.result.assignment, "1/2", rng)
        world = build_world(
            lambda pid: BeaconParty(pid, coin, random.Random(1000 + pid)),
            len(weights),
            seed=3,
        )
        # Party 0 also broadcasts one garbled share under a fresh index.
        epoch = 1
        honest = coin.shares_of_party(0, epoch, random.Random(77))
        garbled = SignatureShare(
            index=honest[0].index,
            value=G.mul(honest[0].value, G.exp_g(5)),
            proof=honest[0].proof,
        )
        world.party(0).broadcast(CoinShareMsg(epoch=epoch, share=garbled))
        for pid in setup.vmap.parties_with_tickets():
            world.party(pid).start_epoch(epoch)
        world.run()
        values = {p.values.get(epoch) for p in world.parties}
        assert len(values) == 1 and None not in values
        assert any(p.counters["invalid_shares"] > 0 for p in world.parties)

    def test_forged_index_cannot_block_honest_share(self):
        """Liveness regression: a Byzantine sender broadcasting garbage
        under honest signer indices *before* the honest shares arrive
        must not blacklist those indices -- the beacon still opens."""
        from repro.protocols.common_coin import BeaconParty, CoinShareMsg
        from repro.sim import build_world
        from repro.weighted.transform import blunt_setup

        weights = [40, 25, 15, 10, 5, 3, 1, 1]
        rng = random.Random(8)
        setup = blunt_setup(weights, "1/3", "1/2")
        coin = WeightedCoin(G, setup.result.assignment, "1/2", rng)
        world = build_world(
            lambda pid: BeaconParty(pid, coin, random.Random(1000 + pid)),
            len(weights),
            seed=8,
        )
        epoch = 1
        # Forge a garbage share for *every* virtual signer index and
        # broadcast them first (they deliver before the honest traffic).
        probe = coin.shares_of_party(0, epoch, random.Random(99))[0]
        for index in range(1, coin.total_shares + 1):
            forged = SignatureShare(
                index=index, value=G.exp_g(index + 12345), proof=probe.proof
            )
            world.party(0).broadcast(CoinShareMsg(epoch=epoch, share=forged))
        for pid in setup.vmap.parties_with_tickets():
            world.party(pid).start_epoch(epoch)
        world.run()
        values = {p.values.get(epoch) for p in world.parties}
        assert len(values) == 1 and None not in values, "forgeries blocked the coin"
        # At least one party had to reject forgeries on its way to quorum
        # (parties that reached quorum on honest shares alone never pay
        # for the buffered forgeries -- that laziness is the point).
        assert any(p.counters["invalid_shares"] > 0 for p in world.parties)

    def test_batched_quorum_collector_unit(self):
        from repro.protocols.batching import BatchedQuorumCollector
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class FakeShare:
            index: int
            good: bool

        verified_batches = []

        def verify(batch):
            verified_batches.append(list(batch))
            return [s.good for s in batch]

        collector = BatchedQuorumCollector(2, verify)
        assert collector.add(FakeShare(1, False)) is None  # buffered
        assert collector.add(FakeShare(1, False)) is None  # dedup, no re-verify
        outcome = collector.add(FakeShare(2, True))  # quorum's worth pending
        assert outcome == (1, 1) and not collector.has_quorum
        # The honest share for index 1 arrives after the forgery: counted.
        outcome = collector.add(FakeShare(1, True))
        assert outcome == (1, 0) and collector.has_quorum
        assert {s.index for s in collector.quorum_shares()} == {1, 2}
        # Rejected forgeries were verified exactly once.
        flat = [s for batch in verified_batches for s in batch]
        assert flat.count(FakeShare(1, False)) == 1

    def test_vaba_with_threshold_coin(self):
        from repro.protocols.common_coin import ThresholdCoin
        from repro.protocols.vaba import VabaParty
        from repro.sim import build_world

        n = 5
        coin = ThresholdCoin(G, n=6, k=3, rng=random.Random(12))
        world = build_world(
            lambda pid: VabaParty(pid, n, 1, coin=coin), n, seed=12
        )
        for pid in range(n):
            world.party(pid).propose(f"v{pid}".encode())
        world.run()
        decided = {p.decided for p in world.parties}
        assert len(decided) == 1 and None not in decided
        assert coin.shares_verified > 0
