"""Unit tests for :mod:`repro.core.types`."""

from fractions import Fraction

import pytest

from repro.core.types import (
    TicketAssignment,
    as_fraction,
    normalize_weights,
    weight_of,
)


class TestAsFraction:
    def test_int(self):
        assert as_fraction(7) == Fraction(7)

    def test_fraction_passthrough(self):
        f = Fraction(2, 3)
        assert as_fraction(f) is f

    def test_string_ratio(self):
        assert as_fraction("1/3") == Fraction(1, 3)

    def test_string_decimal(self):
        assert as_fraction("0.25") == Fraction(1, 4)

    def test_float_exact(self):
        assert as_fraction(0.5) == Fraction(1, 2)

    def test_float_binary_expansion_is_exact(self):
        # 0.1 is not representable; conversion must be the exact binary value.
        assert as_fraction(0.1) == Fraction(0.1)
        assert as_fraction(0.1) != Fraction(1, 10)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(True)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(float("nan"))

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(float("inf"))

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            as_fraction(object())


class TestNormalizeWeights:
    def test_mixed_types(self):
        ws = normalize_weights([1, "1/2", 0.25, Fraction(3)])
        assert ws == (Fraction(1), Fraction(1, 2), Fraction(1, 4), Fraction(3))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normalize_weights([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            normalize_weights([1, -1])

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError, match="non-zero"):
            normalize_weights([0, 0, 0])

    def test_some_zeros_allowed(self):
        ws = normalize_weights([0, 1, 0])
        assert sum(ws) == 1


class TestTicketAssignment:
    def test_basic_metrics(self):
        t = TicketAssignment((3, 0, 1, 0, 2))
        assert t.total == 6
        assert t.max_tickets == 3
        assert t.holders == 3
        assert t.support == (0, 2, 4)
        assert len(t) == 5
        assert list(t) == [3, 0, 1, 0, 2]
        assert t[0] == 3

    def test_subset_total(self):
        t = TicketAssignment((3, 0, 1, 0, 2))
        assert t.subset_total([0, 4]) == 5
        assert t.subset_total([]) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TicketAssignment((1, -1))

    def test_zeros_constructor(self):
        t = TicketAssignment.zeros(4)
        assert t.total == 0
        assert t.holders == 0
        assert len(t) == 4

    def test_to_list_is_copy(self):
        t = TicketAssignment((1, 2))
        lst = t.to_list()
        lst[0] = 99
        assert t[0] == 1

    def test_value_equality(self):
        assert TicketAssignment((1, 2)) == TicketAssignment((1, 2))
        assert TicketAssignment((1, 2)) != TicketAssignment((2, 1))


def test_weight_of():
    ws = normalize_weights([1, 2, 3])
    assert weight_of(ws, [0, 2]) == 4
    assert weight_of(ws, []) == 0
