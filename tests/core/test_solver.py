"""End-to-end tests of the Swiper solver: validity, bounds, determinism."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Swiper,
    WeightQualification,
    WeightRestriction,
    WeightSeparation,
    brute_force_valid,
    is_valid_assignment,
    solve,
    solve_family_optimal,
)
from repro.core.prices import assignment_for_total
from repro.core.types import normalize_weights

PROBLEMS = [
    WeightRestriction("1/4", "1/3"),
    WeightRestriction("1/3", "3/8"),
    WeightRestriction("1/3", "1/2"),
    WeightRestriction("2/3", "3/4"),
    WeightQualification("3/4", "2/3"),
    WeightQualification("2/3", "1/2"),
    WeightSeparation("1/4", "1/3"),
    WeightSeparation("1/3", "1/2"),
    WeightSeparation("2/3", "3/4"),
]

weights_strategy = st.lists(
    st.integers(min_value=0, max_value=10**6), min_size=1, max_size=10
).filter(any)


class TestSolveBasics:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            Swiper(mode="turbo")

    def test_result_fields(self):
        result = solve(WeightRestriction("1/3", "1/2"), [5, 3, 2])
        assert result.mode == "full"
        assert result.total_tickets == result.assignment.total
        assert result.ticket_bound == 4
        assert result.probes >= 1
        assert result.elapsed_seconds >= 0

    def test_single_party(self):
        result = solve(WeightRestriction("1/3", "1/2"), [42])
        assert result.total_tickets >= 1
        assert brute_force_valid(result.problem, [42], result.assignment)

    def test_equal_weights_spread_tickets(self):
        result = solve(WeightRestriction("1/3", "1/2"), [1] * 9)
        # Uniform weights need a roughly uniform assignment to be valid.
        assert result.assignment.max_tickets <= 2

    def test_determinism(self):
        ws = [random.Random(1).randint(1, 1000) for _ in range(20)]
        a = solve(WeightRestriction("1/3", "1/2"), ws)
        b = solve(WeightRestriction("1/3", "1/2"), ws)
        assert a.assignment == b.assignment


class TestSolverValidityProperty:
    @settings(max_examples=40, deadline=None)
    @given(weights=weights_strategy, idx=st.integers(min_value=0, max_value=8))
    def test_full_mode_output_is_valid_and_bounded(self, weights, idx):
        problem = PROBLEMS[idx]
        result = solve(problem, weights)
        assert brute_force_valid(problem, weights, result.assignment)
        assert result.total_tickets <= problem.ticket_bound(len(weights))

    @settings(max_examples=40, deadline=None)
    @given(weights=weights_strategy, idx=st.integers(min_value=0, max_value=8))
    def test_linear_mode_output_is_valid_and_bounded(self, weights, idx):
        problem = PROBLEMS[idx]
        result = solve(problem, weights, mode="linear")
        assert brute_force_valid(problem, weights, result.assignment)
        assert result.total_tickets <= problem.ticket_bound(len(weights))

    @settings(max_examples=30, deadline=None)
    @given(weights=weights_strategy, idx=st.integers(min_value=0, max_value=8))
    def test_linear_never_below_full(self, weights, idx):
        """Linear mode may stop early but never yields fewer tickets."""
        problem = PROBLEMS[idx]
        full = solve(problem, weights)
        linear = solve(problem, weights, mode="linear")
        assert linear.total_tickets >= full.total_tickets

    @settings(max_examples=25, deadline=None)
    @given(weights=weights_strategy, idx=st.integers(min_value=0, max_value=8))
    def test_local_minimality(self, weights, idx):
        """Full mode returns a local minimum: the previous family member
        (one fewer ticket) is invalid."""
        problem = PROBLEMS[idx]
        result = solve(problem, weights)
        total = result.total_tickets
        ws = normalize_weights(weights)
        effective = (
            problem.to_restriction()
            if isinstance(problem, WeightQualification)
            else problem
        )
        prev = assignment_for_total(ws, effective.rounding_constant, total - 1)
        assert not brute_force_valid(problem, ws, prev)

    @settings(max_examples=25, deadline=None)
    @given(weights=weights_strategy, idx=st.integers(min_value=0, max_value=8))
    def test_not_below_family_optimum(self, weights, idx):
        problem = PROBLEMS[idx]
        result = solve(problem, weights)
        optimal = solve_family_optimal(problem, weights)
        assert result.total_tickets >= optimal.total


class TestQuickTestAblation:
    @settings(max_examples=25, deadline=None)
    @given(weights=weights_strategy, idx=st.integers(min_value=0, max_value=8))
    def test_disabling_quick_test_gives_identical_assignment(self, weights, idx):
        problem = PROBLEMS[idx]
        with_quick = Swiper(mode="full", use_quick_test=True).solve(problem, weights)
        without = Swiper(mode="full", use_quick_test=False).solve(problem, weights)
        assert with_quick.assignment == without.assignment
        assert without.stats.dp_calls >= with_quick.stats.dp_calls


class TestWeightedScenarios:
    def test_giant_whale_tiny_tail(self):
        """Heavily skewed weights: tickets stay far below n (Section 7)."""
        weights = [10**9] + [1] * 99
        result = solve(WeightRestriction("1/3", "1/2"), weights)
        assert result.total_tickets < 100

    def test_paper_example_thresholds(self):
        """All four Table 2 WR/WQ parameter pairs solve a skewed instance."""
        rng = random.Random(42)
        weights = [int(1000 * (1.5 ** rng.uniform(0, 20))) for _ in range(50)]
        for problem in (
            WeightRestriction("1/4", "1/3"),
            WeightRestriction("1/3", "3/8"),
            WeightRestriction("1/3", "1/2"),
            WeightRestriction("2/3", "3/4"),
        ):
            result = solve(problem, weights)
            assert result.total_tickets <= problem.ticket_bound(50)
            assert is_valid_assignment(problem, weights, result.assignment)

    def test_float_weights(self):
        weights = [0.1, 0.2, 0.30001, 12.5, 7e-3]
        result = solve(WeightRestriction("1/3", "1/2"), weights)
        assert brute_force_valid(result.problem, weights, result.assignment)

    def test_huge_weights_filecoin_scale(self):
        """Weights on the order of 2.5e19 (Filecoin) stay exact."""
        rng = random.Random(9)
        weights = [rng.randint(10**15, 10**19) for _ in range(40)]
        result = solve(WeightRestriction("1/3", "1/2"), weights)
        assert is_valid_assignment(result.problem, weights, result.assignment)


class TestIsValidAssignment:
    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            is_valid_assignment(WeightRestriction("1/3", "1/2"), [1, 2], [1])

    def test_accepts_arbitrary_valid_assignment(self):
        # Uniform assignment over uniform weights.
        assert is_valid_assignment(
            WeightRestriction("1/3", "1/2"), [1] * 9, [1] * 9
        )

    def test_rejects_concentrated_assignment(self):
        assert not is_valid_assignment(
            WeightRestriction("1/3", "1/2"), [1] * 4, [1, 0, 0, 0]
        )
