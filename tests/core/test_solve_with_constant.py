"""Tests for the rounding-constant ablation entry point."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    WeightQualification,
    WeightRestriction,
    WeightSeparation,
    brute_force_valid,
    solve,
    solve_with_constant,
)


class TestSolveWithConstant:
    def test_optimal_constant_matches_solver(self):
        """With c = rounding_constant the result equals Swiper's."""
        weights = [40, 25, 15, 10, 5, 3, 1, 1]
        problem = WeightRestriction("1/3", "1/2")
        via_constant = solve_with_constant(problem, weights, problem.rounding_constant)
        via_solver = solve(problem, weights)
        assert via_constant.assignment == via_solver.assignment

    def test_constant_validation(self):
        with pytest.raises(ValueError):
            solve_with_constant(WeightRestriction("1/3", "1/2"), [1, 2], "3/2")
        with pytest.raises(ValueError):
            solve_with_constant(WeightRestriction("1/3", "1/2"), [1, 2], -0.1)

    @settings(max_examples=25, deadline=None)
    @given(
        weights=st.lists(
            st.integers(min_value=0, max_value=1000), min_size=1, max_size=8
        ).filter(any),
        c_tenths=st.integers(min_value=0, max_value=9),
    )
    def test_property_any_constant_yields_valid(self, weights, c_tenths):
        """Every constant produces a *valid* assignment (the constant only
        affects how many tickets that takes)."""
        from fractions import Fraction

        problem = WeightRestriction("1/3", "1/2")
        result = solve_with_constant(problem, weights, Fraction(c_tenths, 10))
        assert brute_force_valid(problem, weights, result.assignment)

    def test_wq_and_ws_supported(self):
        weights = [30, 20, 10, 5, 1]
        for problem in (
            WeightQualification("2/3", "1/2"),
            WeightSeparation("1/3", "1/2"),
        ):
            result = solve_with_constant(problem, weights, "1/5")
            assert brute_force_valid(problem, weights, result.assignment)

    def test_zero_constant_never_fewer_tickets_on_chains(self):
        """The Pinkas constant never hurts: c = optimal <= c = 0 ticket
        counts on a skewed instance (paper acknowledgments)."""
        from repro.datasets.synthetic import lognormal_weights

        weights = lognormal_weights(60, 10**8, sigma=1.6, seed=4)
        problem = WeightRestriction("1/3", "1/2")
        paper = solve_with_constant(problem, weights, problem.rounding_constant)
        naive = solve_with_constant(problem, weights, 0)
        assert paper.total_tickets <= naive.total_tickets
