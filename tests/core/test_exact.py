"""Tests for the exact reference solvers (brute force, family scan, MILP)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    WeightQualification,
    WeightRestriction,
    WeightSeparation,
    brute_force_valid,
    solve,
    solve_exact_milp,
    solve_family_optimal,
)
from repro.core.exact import enumerate_feasible_subsets
from repro.core.types import normalize_weights


class TestBruteForce:
    def test_limits_n(self):
        with pytest.raises(ValueError):
            brute_force_valid(WeightRestriction("1/3", "1/2"), [1] * 21, [0] * 21)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            brute_force_valid(WeightRestriction("1/3", "1/2"), [1, 2], [1])

    def test_zero_total_never_viable(self):
        for problem in (
            WeightRestriction("1/3", "1/2"),
            WeightQualification("2/3", "1/2"),
            WeightSeparation("1/3", "1/2"),
        ):
            assert not brute_force_valid(problem, [1, 2, 3], [0, 0, 0])

    def test_wq_definition_direct(self):
        # Uniform: every 3-of-4 majority (>2/3 weight) needs >1/2 tickets.
        problem = WeightQualification("2/3", "1/2")
        assert brute_force_valid(problem, [1, 1, 1, 1], [1, 1, 1, 1])
        # One party holding no tickets breaks it: {0,1,2} holds 3/4 > 2/3
        # weight... it holds all 3 tickets, fine; but {1,2,3} holds 3/4 > 2/3
        # weight and only 2 of 3 tickets > 1/2 -- still fine.  Concentrate
        # tickets instead: {1,2,3} with 0 tickets out of 1 violates.
        assert not brute_force_valid(problem, [1, 1, 1, 1], [1, 0, 0, 0])


class TestFamilyOptimal:
    @settings(max_examples=30, deadline=None)
    @given(
        weights=st.lists(
            st.integers(min_value=0, max_value=100), min_size=1, max_size=8
        ).filter(any)
    )
    def test_is_valid_and_minimal_within_family(self, weights):
        problem = WeightRestriction("1/3", "1/2")
        optimal = solve_family_optimal(problem, weights)
        assert brute_force_valid(problem, weights, optimal)
        # No family member with fewer tickets is valid (checked by scan
        # construction); re-verify the immediate predecessor.
        from repro.core.prices import assignment_for_total

        ws = normalize_weights(weights)
        if optimal.total > 1:
            prev = assignment_for_total(
                ws, problem.rounding_constant, optimal.total - 1
            )
            assert not brute_force_valid(problem, ws, prev)


class TestEnumerateFeasibleSubsets:
    def test_maximal_filtering(self):
        ws = normalize_weights([1, 1, 1, 1])
        # capacity 2.5: feasible subsets have <= 2 elements; maximal ones
        # are exactly the 2-element subsets.
        from fractions import Fraction

        subsets = enumerate_feasible_subsets(ws, Fraction(5, 2))
        assert sorted(subsets) == sorted(
            [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        )

    def test_all_subsets_mode(self):
        from fractions import Fraction

        ws = normalize_weights([1, 1])
        subsets = enumerate_feasible_subsets(ws, Fraction(10), maximal_only=False)
        assert len(subsets) == 4  # includes empty and full


class TestMilp:
    def test_limits_n(self):
        with pytest.raises(ValueError):
            solve_exact_milp(WeightRestriction("1/3", "1/2"), [1] * 17)

    @settings(max_examples=20, deadline=None)
    @given(
        weights=st.lists(
            st.integers(min_value=0, max_value=60), min_size=1, max_size=7
        ).filter(any)
    )
    def test_milp_is_valid_and_no_worse_than_swiper(self, weights):
        problem = WeightRestriction("1/3", "1/2")
        milp_result = solve_exact_milp(problem, weights)
        assert brute_force_valid(problem, weights, milp_result)
        swiper_result = solve(problem, weights)
        assert milp_result.total <= swiper_result.total_tickets

    def test_milp_wq_via_reduction(self):
        problem = WeightQualification("2/3", "1/2")
        result = solve_exact_milp(problem, [5, 3, 2, 1, 1])
        assert brute_force_valid(problem, [5, 3, 2, 1, 1], result)

    def test_milp_ws_small(self):
        problem = WeightSeparation("1/3", "1/2")
        weights = [4, 3, 2, 1]
        result = solve_exact_milp(problem, weights)
        assert brute_force_valid(problem, weights, result)
        swiper_result = solve(problem, weights)
        assert result.total <= swiper_result.total_tickets

    def test_gap_example_uniform(self):
        """On uniform weights Swiper's family is near-optimal."""
        problem = WeightRestriction("1/3", "1/2")
        weights = [1] * 9
        milp_result = solve_exact_milp(problem, weights)
        swiper_result = solve(problem, weights)
        assert milp_result.total <= swiper_result.total_tickets <= problem.ticket_bound(9)
