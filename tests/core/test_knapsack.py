"""Tests for the knapsack tiers: exact DP, numpy DP, greedy bounds."""

from fractions import Fraction
from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import knapsack
from repro.core.types import normalize_weights


def brute_min_weight(weights, profits, target):
    """Reference: minimum weight of a subset with profit >= target."""
    n = len(weights)
    best = None
    for r in range(n + 1):
        for combo in combinations(range(n), r):
            if sum(profits[i] for i in combo) >= target:
                w = sum(weights[i] for i in combo)
                if best is None or w < best:
                    best = w
    return best


def brute_max_profit(weights, profits, cap):
    """Reference: maximum profit of a subset with weight <= cap."""
    n = len(weights)
    best = 0
    for r in range(n + 1):
        for combo in combinations(range(n), r):
            if sum(weights[i] for i in combo) <= cap:
                best = max(best, sum(profits[i] for i in combo))
    return best


class TestStrictCapInt:
    def test_fractional_capacity(self):
        assert knapsack.strict_cap_int(Fraction(7, 2)) == 3

    def test_integer_capacity_is_exclusive(self):
        assert knapsack.strict_cap_int(Fraction(4)) == 3

    def test_nonpositive(self):
        assert knapsack.strict_cap_int(Fraction(0)) == -1
        assert knapsack.strict_cap_int(Fraction(-3, 2)) == -1

    def test_small_positive(self):
        assert knapsack.strict_cap_int(Fraction(1, 3)) == 0


class TestScaleWeightsExact:
    def test_integer_weights_unchanged_denominator_one(self):
        ints, denom = knapsack.scale_weights_exact(normalize_weights([3, 5]))
        assert denom == 1
        assert ints == [3, 5]

    def test_rational_weights(self):
        ints, denom = knapsack.scale_weights_exact(
            normalize_weights([Fraction(1, 2), Fraction(1, 3)])
        )
        assert denom == 6
        assert ints == [3, 2]

    def test_exactness(self):
        ws = normalize_weights([Fraction(7, 12), Fraction(5, 8), 2])
        ints, denom = knapsack.scale_weights_exact(ws)
        for i, w in enumerate(ws):
            assert Fraction(ints[i], denom) == w


class TestScaleWeightsRounded:
    def test_round_down_never_overstates(self):
        ws = normalize_weights([Fraction(1, 3), Fraction(2, 3), 1])
        total = sum(ws)
        down = knapsack.scale_weights_rounded(ws, total, round_up=False)
        scale = Fraction(1 << knapsack.SCALE_BITS) / total
        for i, w in enumerate(ws):
            assert down[i] <= w * scale

    def test_round_up_never_understates(self):
        ws = normalize_weights([Fraction(1, 3), Fraction(2, 3), 1])
        total = sum(ws)
        up = knapsack.scale_weights_rounded(ws, total, round_up=True)
        scale = Fraction(1 << knapsack.SCALE_BITS) / total
        for i, w in enumerate(ws):
            assert up[i] >= w * scale

    def test_exact_weights_identical_both_ways(self):
        ws = normalize_weights([1, 2, 1])
        total = sum(ws)
        down = knapsack.scale_weights_rounded(ws, total, round_up=False)
        up = knapsack.scale_weights_rounded(ws, total, round_up=True)
        assert (down == up).all()


class TestExactDP:
    def test_min_weight_simple(self):
        assert knapsack.min_weight_for_profit([3, 2, 5], [1, 1, 2], 2) == 5
        # profit 2 via items {0,1} weight 5 or item {2} weight 5.

    def test_min_weight_unreachable(self):
        assert knapsack.min_weight_for_profit([1, 1], [1, 1], 5) is None

    def test_min_weight_zero_target(self):
        assert knapsack.min_weight_for_profit([1], [1], 0) == 0

    def test_max_profit_simple(self):
        assert knapsack.max_profit_under([3, 2, 5], [1, 1, 2], 5) == 2

    def test_max_profit_negative_cap(self):
        assert knapsack.max_profit_under([1], [1], -1) == 0

    def test_zero_profit_items_ignored(self):
        assert knapsack.max_profit_under([1, 1], [0, 3], 1) == 3

    @settings(max_examples=60, deadline=None)
    @given(
        items=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.integers(min_value=0, max_value=6),
            ),
            min_size=0,
            max_size=8,
        ),
        target=st.integers(min_value=0, max_value=20),
        cap=st.integers(min_value=-1, max_value=60),
    )
    def test_property_against_brute_force(self, items, target, cap):
        weights = [w for w, _ in items]
        profits = [p for _, p in items]
        assert knapsack.min_weight_for_profit(weights, profits, target) == (
            brute_min_weight(weights, profits, target)
        )
        assert knapsack.max_profit_under(weights, profits, cap) == brute_max_profit(
            weights, profits, cap
        )


class TestNumpyDP:
    @settings(max_examples=40, deadline=None)
    @given(
        items=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=0, max_value=6),
            ),
            min_size=0,
            max_size=8,
        ),
        target=st.integers(min_value=0, max_value=20),
        cap=st.integers(min_value=-1, max_value=3000),
    )
    def test_agrees_with_exact_on_integer_weights(self, items, target, cap):
        weights = np.array([w for w, _ in items], dtype=np.int64)
        profits = [p for _, p in items]
        got = knapsack.min_weight_for_profit_numpy(weights, profits, target)
        want = knapsack.min_weight_for_profit(weights.tolist(), profits, target)
        assert got == want
        got_mp = knapsack.max_profit_under_numpy(weights, profits, cap)
        want_mp = knapsack.max_profit_under(weights.tolist(), profits, cap)
        assert got_mp == want_mp

    def test_single_item_reaching_target(self):
        weights = np.array([7, 3], dtype=np.int64)
        assert knapsack.min_weight_for_profit_numpy(weights, [5, 1], 4) == 7

    def test_unreachable_returns_none(self):
        weights = np.array([7], dtype=np.int64)
        assert knapsack.min_weight_for_profit_numpy(weights, [1], 3) is None


class TestGreedyBounds:
    @settings(max_examples=60, deadline=None)
    @given(
        items=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=0, max_value=6),
            ),
            min_size=1,
            max_size=8,
        ),
        cap_num=st.integers(min_value=0, max_value=80),
    )
    def test_bounds_bracket_true_optimum(self, items, cap_num):
        weights = normalize_weights([w for w, _ in items]) if any(
            w for w, _ in items
        ) else None
        if weights is None:
            return
        profits = [p for _, p in items]
        capacity = Fraction(cap_num, 2)
        # True strict-capacity optimum by brute force.
        n = len(weights)
        best = 0
        for r in range(n + 1):
            for combo in combinations(range(n), r):
                if sum((weights[i] for i in combo), Fraction(0)) < capacity:
                    best = max(best, sum(profits[i] for i in combo))
        ub = knapsack.fractional_upper_bound(weights, profits, capacity)
        lb = knapsack.greedy_lower_bound(weights, profits, capacity)
        assert lb <= best <= ub

    def test_zero_capacity(self):
        ws = normalize_weights([1, 2])
        assert knapsack.fractional_upper_bound(ws, [1, 1], Fraction(0)) == 0
        assert knapsack.greedy_lower_bound(ws, [1, 1], Fraction(0)) == 0

    def test_lower_bound_catches_big_single_item(self):
        # Greedy packing by density may skip the single most profitable
        # item; the best-single fallback must catch it.
        ws = normalize_weights([1, 1, 1, 10])
        profits = [2, 2, 2, 9]
        capacity = Fraction(11)
        lb = knapsack.greedy_lower_bound(ws, profits, capacity)
        assert lb >= 9
