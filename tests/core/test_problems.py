"""Unit tests for the problem definitions and theorem bounds."""

import math
from fractions import Fraction

import pytest

from repro.core import (
    WeightQualification,
    WeightRestriction,
    WeightSeparation,
    wq_bound_value,
    wr_bound_value,
    ws_bound_value,
)


class TestWeightRestriction:
    def test_accepts_strings_and_fractions(self):
        p = WeightRestriction("1/3", Fraction(1, 2))
        assert p.alpha_w == Fraction(1, 3)
        assert p.alpha_n == Fraction(1, 2)

    def test_requires_gap(self):
        with pytest.raises(ValueError, match="alpha_w < alpha_n"):
            WeightRestriction("1/2", "1/3")
        with pytest.raises(ValueError, match="alpha_w < alpha_n"):
            WeightRestriction("1/3", "1/3")

    @pytest.mark.parametrize("bad", ["0", "1", "-1/2", "3/2"])
    def test_requires_open_unit_interval(self, bad):
        with pytest.raises(ValueError):
            WeightRestriction(bad, "1/2")

    def test_rounding_constant_is_alpha_w(self):
        assert WeightRestriction("1/4", "1/3").rounding_constant == Fraction(1, 4)

    def test_ticket_bound_matches_theorem(self):
        # alpha_w=1/3, alpha_n=1/2: (1/3)(2/3)/(1/6) n = 4/3 n.
        p = WeightRestriction("1/3", "1/2")
        assert p.ticket_bound(3) == 4
        assert p.ticket_bound(100) == math.ceil(Fraction(4, 3) * 100)

    def test_ticket_bound_positive_n_required(self):
        with pytest.raises(ValueError):
            WeightRestriction("1/3", "1/2").ticket_bound(0)

    def test_frozen(self):
        p = WeightRestriction("1/3", "1/2")
        with pytest.raises(AttributeError):
            p.alpha_w = Fraction(1, 4)  # type: ignore[misc]


class TestWeightQualification:
    def test_requires_gap(self):
        with pytest.raises(ValueError, match="beta_n < beta_w"):
            WeightQualification("1/3", "1/2")

    def test_reduction_parameters(self):
        q = WeightQualification("2/3", "1/2")
        r = q.to_restriction()
        assert r.alpha_w == Fraction(1, 3)
        assert r.alpha_n == Fraction(1, 2)

    def test_rounding_constant_matches_reduction(self):
        q = WeightQualification("3/4", "2/3")
        assert q.rounding_constant == q.to_restriction().rounding_constant

    def test_bound_equals_reduced_bound(self):
        # The algebraic identity beta_w(1-beta_w)/(beta_w-beta_n) ==
        # alpha_w'(1-alpha_w')/(alpha_n'-alpha_w') under the reduction.
        for bw, bn in [("2/3", "1/2"), ("3/4", "2/3"), ("1/3", "1/4")]:
            q = WeightQualification(bw, bn)
            for n in (1, 10, 1000):
                assert q.ticket_bound(n) == q.to_restriction().ticket_bound(n)


class TestWeightSeparation:
    def test_requires_gap(self):
        with pytest.raises(ValueError, match="alpha < beta"):
            WeightSeparation("1/2", "1/3")

    def test_rounding_constant_is_midpoint(self):
        s = WeightSeparation("1/4", "1/3")
        assert s.rounding_constant == Fraction(7, 24)

    def test_ticket_bound(self):
        # (alpha+beta)(1-alpha)/(beta-alpha) n for alpha=1/4, beta=1/3:
        # (7/12)(3/4)/(1/12) n = 21/4 n.
        s = WeightSeparation("1/4", "1/3")
        assert s.ticket_bound(4) == 21

    def test_numerator_below_one(self):
        # Paper: (alpha+beta)(1-alpha) < 1 for all 0 < alpha < beta < 1.
        import random

        rng = random.Random(7)
        for _ in range(200):
            a = Fraction(rng.randint(1, 98), 100)
            b = Fraction(rng.randint(int(a * 100) + 1, 99), 100)
            assert (a + b) * (1 - a) < 1


class TestBoundValues:
    def test_wr_bound_value(self):
        assert wr_bound_value("1/3", "1/2", 3) == 4

    def test_wr_bound_numerator_never_exceeds_quarter(self):
        # alpha_w (1 - alpha_w) <= 1/4 (paper, Section 2.1 discussion).
        for num in range(1, 100):
            aw = Fraction(num, 100)
            assert aw * (1 - aw) <= Fraction(1, 4)

    def test_wq_equals_wr_after_reduction(self):
        assert wq_bound_value("2/3", "1/2", 7) == wr_bound_value("1/3", "1/2", 7)

    def test_ws_bound_value(self):
        assert ws_bound_value("1/4", "1/3", 12) == Fraction(21, 4) * 12

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            wr_bound_value("1/2", "1/3", 5)
        with pytest.raises(ValueError):
            wq_bound_value("1/3", "1/2", 5)
        with pytest.raises(ValueError):
            ws_bound_value("1/2", "1/3", 5)
