"""Tests for the validity checkers against the brute-force oracle."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    WeightQualification,
    WeightRestriction,
    WeightSeparation,
    brute_force_valid,
    make_checker,
)
from repro.core.types import normalize_weights
from repro.core.verify import Verdict


def wr_problems():
    return [
        WeightRestriction("1/4", "1/3"),
        WeightRestriction("1/3", "3/8"),
        WeightRestriction("1/3", "1/2"),
        WeightRestriction("2/3", "3/4"),
    ]


class TestRestrictionChecker:
    def test_zero_total_invalid(self):
        ws = normalize_weights([1, 1, 1])
        checker = make_checker(WeightRestriction("1/3", "1/2"), ws)
        assert checker.check([0, 0, 0]) is False

    def test_violation_target(self):
        ws = normalize_weights([1, 1, 1])
        checker = make_checker(WeightRestriction("1/3", "1/2"), ws)
        # alpha_n * T = 1.5 -> violating from 2 tickets up.
        assert checker.violation_target(3) == 2
        # alpha_n * T = 2 -> violating from 2 (strict inequality).
        assert checker.violation_target(4) == 2

    def test_known_valid(self):
        # Single giant party with > 2/3 of the weight: one ticket suffices.
        ws = normalize_weights([100, 1, 1])
        checker = make_checker(WeightRestriction("1/3", "1/2"), ws)
        assert checker.check([1, 0, 0]) is True

    def test_known_invalid(self):
        # Uniform weights, one party with all tickets: the singleton subset
        # holds 1/4 < 1/3 of weight but 100% of tickets.
        ws = normalize_weights([1, 1, 1, 1])
        checker = make_checker(WeightRestriction("1/3", "1/2"), ws)
        assert checker.check([1, 0, 0, 0]) is False

    def test_uniform_equal_tickets_valid(self):
        ws = normalize_weights([1] * 9)
        checker = make_checker(WeightRestriction("1/3", "1/2"), ws)
        assert checker.check([1] * 9) is True

    @settings(max_examples=80, deadline=None)
    @given(
        weights=st.lists(
            st.integers(min_value=0, max_value=50), min_size=1, max_size=9
        ).filter(any),
        tickets=st.data(),
        problem_idx=st.integers(min_value=0, max_value=3),
    )
    def test_property_matches_oracle(self, weights, tickets, problem_idx):
        problem = wr_problems()[problem_idx]
        ws = normalize_weights(weights)
        ts = tickets.draw(
            st.lists(
                st.integers(min_value=0, max_value=4),
                min_size=len(ws),
                max_size=len(ws),
            )
        )
        checker = make_checker(problem, ws)
        assert checker.check(ts) == brute_force_valid(problem, ws, ts)

    def test_quick_test_verdicts_are_sound(self):
        # Whenever quick() is decisive it must agree with the oracle.
        import random

        rng = random.Random(3)
        problem = WeightRestriction("1/3", "1/2")
        for _ in range(100):
            n = rng.randint(1, 8)
            weights = [rng.randint(0, 30) for _ in range(n)]
            if not any(weights):
                continue
            ws = normalize_weights(weights)
            ts = [rng.randint(0, 3) for _ in range(n)]
            if sum(ts) == 0:
                continue
            checker = make_checker(problem, ws)
            verdict = checker.quick(ts, sum(ts))
            truth = brute_force_valid(problem, ws, ts)
            if verdict is Verdict.VALID:
                assert truth is True
            elif verdict is Verdict.INVALID:
                assert truth is False

    def test_linear_mode_never_accepts_invalid(self):
        import random

        rng = random.Random(5)
        problem = WeightRestriction("1/3", "1/2")
        for _ in range(100):
            n = rng.randint(1, 8)
            weights = [rng.randint(0, 30) for _ in range(n)]
            if not any(weights):
                continue
            ws = normalize_weights(weights)
            ts = [rng.randint(0, 3) for _ in range(n)]
            checker = make_checker(problem, ws, linear_mode=True)
            if checker.check(ts):
                assert brute_force_valid(problem, ws, ts) is True


class TestQualificationViaReduction:
    @settings(max_examples=60, deadline=None)
    @given(
        weights=st.lists(
            st.integers(min_value=0, max_value=50), min_size=1, max_size=9
        ).filter(any),
        data=st.data(),
    )
    def test_reduction_equals_direct_definition(self, weights, data):
        """Theorem 2.2: checking WQ via WR(1-bw, 1-bn) matches Problem 2."""
        problem = WeightQualification("2/3", "1/2")
        ws = normalize_weights(weights)
        ts = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=4),
                min_size=len(ws),
                max_size=len(ws),
            )
        )
        checker = make_checker(problem, ws)
        assert checker.check(ts) == brute_force_valid(problem, ws, ts)


class TestSeparationChecker:
    def test_zero_total_invalid(self):
        ws = normalize_weights([1, 1])
        checker = make_checker(WeightSeparation("1/4", "1/3"), ws)
        assert checker.check([0, 0]) is False

    def test_uniform_equal_tickets(self):
        ws = normalize_weights([1] * 12)
        checker = make_checker(WeightSeparation("1/4", "1/3"), ws)
        # With equal tickets, sets below 3 units must out-ticket... low sets
        # have < 3 tickets, high sets have > 4: separated.
        assert checker.check([1] * 12) is True

    @settings(max_examples=60, deadline=None)
    @given(
        weights=st.lists(
            st.integers(min_value=0, max_value=50), min_size=1, max_size=8
        ).filter(any),
        data=st.data(),
    )
    def test_property_matches_oracle(self, weights, data):
        problem = WeightSeparation("1/3", "1/2")
        ws = normalize_weights(weights)
        ts = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=4),
                min_size=len(ws),
                max_size=len(ws),
            )
        )
        checker = make_checker(problem, ws)
        assert checker.check(ts) == brute_force_valid(problem, ws, ts)


class TestCheckStats:
    def test_stats_accumulate(self):
        ws = normalize_weights([3, 2, 1, 1])
        checker = make_checker(WeightRestriction("1/3", "1/2"), ws)
        checker.check([1, 1, 0, 0])
        checker.check([2, 1, 1, 0])
        assert checker.stats.checks == 2
        total_verdicts = (
            checker.stats.quick_valid
            + checker.stats.quick_invalid
            + checker.stats.quick_uncertain
        )
        assert total_verdicts == 2

    def test_merge(self):
        from repro.core import CheckStats

        a = CheckStats(checks=1, dp_calls=2)
        b = CheckStats(checks=3, quick_valid=1)
        a.merge(b)
        assert a.checks == 4
        assert a.dp_calls == 2
        assert a.quick_valid == 1

    def test_no_quick_test_goes_straight_to_dp(self):
        ws = normalize_weights([3, 2, 1, 1])
        checker = make_checker(
            WeightRestriction("1/3", "1/2"), ws, use_quick_test=False
        )
        checker.check([1, 1, 0, 0])
        assert checker.stats.quick_valid == 0
        assert checker.stats.quick_uncertain == 0
        assert checker.stats.dp_calls == 1
