"""Adversarial weight distributions (paper: robustness claim + Section 9
"Adversarial attacks" future work).

Swiper's robustness property says the theorem bounds hold for *every*
weight distribution, including maliciously crafted ones.  These tests
stress that claim with the hybrid organic/adversarial distributions the
paper's future-work section describes: honest weights stay organic while
the adversary redistributes its own weight (e.g. splitting it across
Sybil identities) to inflate its ticket share.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WeightRestriction, brute_force_valid, solve
from repro.datasets.synthetic import lognormal_weights
from repro.sim.adversary import most_tickets_under

PROBLEM = WeightRestriction("1/3", "1/2")


def sybil_split(weights: list[int], party: int, parts: int) -> list[int]:
    """Replace ``party`` with ``parts`` equal-weight Sybil identities."""
    w = weights[party]
    rest = [x for i, x in enumerate(weights) if i != party]
    share, remainder = divmod(w, parts)
    sybils = [share + (1 if i < remainder else 0) for i in range(parts)]
    return rest + [s for s in sybils if s > 0]


class TestAdversarialDistributions:
    def test_bound_holds_on_dirac(self):
        """One party holding everything except dust."""
        weights = [10**18] + [1] * 49
        result = solve(PROBLEM, weights)
        assert result.total_tickets <= PROBLEM.ticket_bound(50)

    def test_bound_holds_on_geometric(self):
        """Geometric weights: every prefix outweighs the rest."""
        weights = [2**i for i in range(40)]
        result = solve(PROBLEM, weights)
        assert result.total_tickets <= PROBLEM.ticket_bound(40)

    def test_bound_holds_on_threshold_straddlers(self):
        """Weights engineered to sit exactly at the alpha_w boundary."""
        weights = [1, 1, 1] + [3] * 6  # many subsets hit exactly 1/3 W
        result = solve(PROBLEM, weights)
        assert brute_force_valid(PROBLEM, weights, result.assignment)

    @settings(max_examples=25, deadline=None)
    @given(
        scale=st.integers(min_value=1, max_value=10**12),
        pattern=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=10),
    )
    def test_property_bound_universal(self, scale, pattern):
        """Bounds are distribution-free: arbitrary magnitudes and shapes."""
        weights = [p * scale + (1 if not any(pattern) else 0) for p in pattern]
        if not any(weights):
            weights[0] = scale
        result = solve(PROBLEM, weights)
        assert result.total_tickets <= PROBLEM.ticket_bound(len(weights))


class TestSybilRedistribution:
    def test_sybil_splitting_cannot_exceed_ticket_cap(self):
        """However the adversary splits its weight, its ticket share stays
        below alpha_n -- the WR constraint binds every subset, including
        all-Sybil ones."""
        honest = lognormal_weights(30, 10**7, sigma=1.4, seed=2)
        adversary_weight = sum(honest) // 4  # under the 1/3 budget
        for parts in (1, 2, 5, 20):
            weights = honest + [
                w
                for w in [
                    adversary_weight // parts + (1 if i < adversary_weight % parts else 0)
                    for i in range(parts)
                ]
                if w > 0
            ]
            adversary_ids = set(range(len(honest), len(weights)))
            result = solve(PROBLEM, weights)
            tickets = result.assignment
            adv_tickets = sum(tickets[i] for i in adversary_ids)
            assert Fraction(adv_tickets) < Fraction(1, 2) * tickets.total

    def test_splitting_changes_totals_within_bound(self):
        """Sybil splitting may change T, but never past the (new) bound --
        quantifying the Section 9 'adversarial attack' headroom."""
        honest = lognormal_weights(30, 10**7, sigma=1.4, seed=3)
        weights = honest + [sum(honest) // 4]
        base = solve(PROBLEM, weights)
        split = sybil_split(weights, len(weights) - 1, 10)
        attacked = solve(PROBLEM, split)
        assert base.total_tickets <= PROBLEM.ticket_bound(len(weights))
        assert attacked.total_tickets <= PROBLEM.ticket_bound(len(split))

    def test_greedy_adversary_never_breaks_validity(self):
        """most_tickets_under is the strongest subset attack; the solved
        assignment still denies it the threshold."""
        rng = random.Random(5)
        for seed in range(5):
            weights = lognormal_weights(25, 10**6, sigma=1.8, seed=seed)
            result = solve(PROBLEM, weights)
            tickets = result.assignment.to_list()
            corrupt = most_tickets_under(weights, tickets, "1/3")
            adv = sum(tickets[i] for i in corrupt)
            assert Fraction(adv) < Fraction(1, 2) * result.total_tickets
