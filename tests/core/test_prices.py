"""Tests for the totally-ordered ticket-assignment family."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prices import (
    assignment_for_total,
    scale_for_total,
    ticket_price,
    total_at_scale,
)
from repro.core.types import normalize_weights

WEIGHTS = normalize_weights([5, 3, 2, 1])
C = Fraction(1, 3)


class TestTicketPrice:
    def test_formula(self):
        assert ticket_price(Fraction(2), Fraction(1, 3), 1) == Fraction(1, 3)
        assert ticket_price(Fraction(2), Fraction(1, 3), 2) == Fraction(5, 6)

    def test_monotone_in_m(self):
        prices = [ticket_price(Fraction(3), C, m) for m in range(1, 10)]
        assert prices == sorted(prices)

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            ticket_price(Fraction(0), C, 1)

    def test_bad_m_rejected(self):
        with pytest.raises(ValueError):
            ticket_price(Fraction(1), C, 0)


class TestAssignmentForTotal:
    def test_zero_total(self):
        assert assignment_for_total(WEIGHTS, C, 0) == [0, 0, 0, 0]

    def test_exact_total(self):
        for total in range(0, 30):
            t = assignment_for_total(WEIGHTS, C, total)
            assert sum(t) == total

    def test_monotone_family(self):
        # Each family member dominates the previous one pointwise,
        # gaining exactly one ticket (total order, Section 3.1).
        prev = assignment_for_total(WEIGHTS, C, 0)
        for total in range(1, 25):
            cur = assignment_for_total(WEIGHTS, C, total)
            diffs = [c - p for c, p in zip(cur, prev)]
            assert all(d >= 0 for d in diffs)
            assert sum(diffs) == 1
            prev = cur

    def test_heavier_party_never_behind(self):
        # With equal c, a strictly heavier party holds at least as many
        # tickets (its prices are pointwise cheaper).
        for total in range(1, 25):
            t = assignment_for_total(WEIGHTS, C, total)
            assert t[0] >= t[1] >= t[2] >= t[3]

    def test_zero_weight_party_gets_nothing(self):
        ws = normalize_weights([2, 0, 1])
        for total in range(10):
            t = assignment_for_total(ws, C, total)
            assert t[1] == 0

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            assignment_for_total(WEIGHTS, C, -1)

    def test_deterministic_tie_break(self):
        # Equal weights tie at every price; lower index wins first.
        ws = normalize_weights([1, 1, 1])
        assert assignment_for_total(ws, C, 1) == [1, 0, 0]
        assert assignment_for_total(ws, C, 2) == [1, 1, 0]
        assert assignment_for_total(ws, C, 4) == [2, 1, 1]

    def test_matches_floor_formula_at_scale(self):
        # At the price of the T-th ticket, the selection equals the full
        # floor assignment floor(s * w_i + c) (ties consumed in order).
        total = 17
        s = scale_for_total(WEIGHTS, C, total)
        full = [int(s * w + C) if w > 0 else 0 for w in WEIGHTS]
        # full floor: floor(s*w + c)
        full = []
        for w in WEIGHTS:
            v = s * w + C
            full.append(v.numerator // v.denominator)
        assert sum(full) >= total
        t = assignment_for_total(WEIGHTS, C, total)
        # Selection only differs from the floor assignment on the border.
        for ti, fi, w in zip(t, full, WEIGHTS):
            assert fi - 1 <= ti <= fi
            if ti == fi - 1:
                # This party is on the border: s*w + c is an integer.
                v = s * w + C
                assert v.denominator == 1


class TestTotalAtScale:
    def test_matches_floor_sum(self):
        s = Fraction(7, 5)
        expected = 0
        for w in WEIGHTS:
            v = s * w + C
            expected += v.numerator // v.denominator
        assert total_at_scale(WEIGHTS, C, s) == expected

    def test_zero_scale(self):
        # floor(c) = 0 for c < 1.
        assert total_at_scale(WEIGHTS, C, Fraction(0)) == 0

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            total_at_scale(WEIGHTS, C, Fraction(-1))


class TestScaleForTotal:
    def test_round_trip(self):
        for total in range(1, 20):
            s = scale_for_total(WEIGHTS, C, total)
            assert total_at_scale(WEIGHTS, C, s) >= total
            # Any scale strictly below s yields fewer than `total` tickets;
            # probing just below the jump point suffices.
            eps = Fraction(1, 10**9)
            assert total_at_scale(WEIGHTS, C, max(s - eps, Fraction(0))) < total

    def test_total_must_be_positive(self):
        with pytest.raises(ValueError):
            scale_for_total(WEIGHTS, C, 0)


@settings(max_examples=50, deadline=None)
@given(
    weights=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=12).filter(
        lambda ws: any(ws)
    ),
    c_num=st.integers(min_value=0, max_value=9),
    total=st.integers(min_value=0, max_value=60),
)
def test_property_total_and_order(weights, c_num, total):
    """Family invariants hold for arbitrary weights and constants."""
    ws = normalize_weights(weights)
    c = Fraction(c_num, 10)
    t = assignment_for_total(ws, c, total)
    assert sum(t) == total
    assert all(x >= 0 for x in t)
    nxt = assignment_for_total(ws, c, total + 1)
    diffs = [b - a for a, b in zip(t, nxt)]
    assert sum(diffs) == 1 and all(d >= 0 for d in diffs)
