"""Property-based sweep: every solver output satisfies the verifier.

Seeded random weight vectors across three regimes -- uniform, zipf-skewed,
and adversarial near-threshold constructions -- are solved for each
problem class, and every output is checked against the exact validity
predicate of :mod:`repro.core.verify` (and, for small n, against the
brute-force oracle of :mod:`repro.core.exact`).  All ~200 cases use
deterministic seeds, so a failure reproduces exactly.

Invariants per case:
* the returned assignment is *valid* (no violating subset exists);
* the total never exceeds the theorem bound used as search anchor;
* the solve is deterministic (same input, same tickets);
* linear mode is also valid and never undercuts full mode's total.
"""

import random
from fractions import Fraction

import pytest

from repro.core import (
    WeightQualification,
    WeightRestriction,
    WeightSeparation,
    brute_force_valid,
    is_valid_assignment,
    solve,
)
from repro.datasets.synthetic import zipf_weights

PROBLEMS = [
    WeightRestriction("1/3", "1/2"),
    WeightQualification("2/3", "1/2"),
    WeightSeparation("1/3", "2/3"),
]

#: brute-force oracle is exponential; only cross-check tiny instances
_ORACLE_MAX_N = 10


def _uniform_case(seed: int) -> list[int]:
    rng = random.Random(seed)
    n = rng.randint(3, 20)
    return [rng.randint(1, 1000) for _ in range(n)]


def _zipf_case(seed: int) -> list[int]:
    rng = random.Random(seed)
    n = rng.randint(4, 18)
    return zipf_weights(n, n * 100, s=0.8 + (seed % 5) * 0.35, seed=seed)


def _near_threshold_case(seed: int) -> list:
    """A giant sitting just at/around the alpha_w weight budget plus a
    tail of unit weights -- the boundary regime where rounding errors in
    a checker would first show."""
    rng = random.Random(seed)
    tail = rng.randint(4, 16)
    # giant ~ alpha/(1-alpha) * tail for alpha = 1/3 puts it right at the
    # budget; the +/-1 jitter straddles the strict inequality.
    giant = max(1, tail // 2 + rng.choice((-1, 0, 1)))
    weights = [giant] + [1] * tail
    if seed % 3 == 0:
        weights.append(Fraction(1, 3))  # exercise exact rational arithmetic
    if seed % 4 == 0:
        weights[1:4] = [giant, giant, giant]  # duplicated giants
    rng.shuffle(weights)
    return weights


CASES = (
    [("uniform", s, _uniform_case(s)) for s in range(24)]
    + [("zipf", s, _zipf_case(s)) for s in range(24)]
    + [("near-threshold", s, _near_threshold_case(s)) for s in range(24)]
)


@pytest.mark.parametrize("problem", PROBLEMS, ids=lambda p: type(p).__name__)
@pytest.mark.parametrize("family,seed,weights", CASES, ids=lambda c: str(c)[:24])
def test_solver_output_passes_verifier(problem, family, seed, weights):
    result = solve(problem, weights)
    tickets = result.assignment.to_list()
    assert len(tickets) == len(weights)
    assert all(t >= 0 for t in tickets)
    assert result.total_tickets <= result.ticket_bound, (family, seed)
    assert is_valid_assignment(problem, weights, tickets), (family, seed)
    if len(weights) <= _ORACLE_MAX_N:
        assert brute_force_valid(problem, weights, tickets), (family, seed)


@pytest.mark.parametrize("family,seed,weights", CASES[::6], ids=lambda c: str(c)[:24])
def test_solver_deterministic_and_linear_mode_sound(family, seed, weights):
    problem = WeightRestriction("1/3", "1/2")
    full_a = solve(problem, weights)
    full_b = solve(problem, weights)
    assert full_a.assignment.to_list() == full_b.assignment.to_list()

    linear = solve(problem, weights, mode="linear")
    assert is_valid_assignment(problem, weights, linear.assignment.to_list())
    assert linear.total_tickets <= linear.ticket_bound
    # linear's conservative checker accepts a subset of the family, so it
    # can never stop below full mode's local minimum
    assert linear.total_tickets >= full_a.total_tickets
