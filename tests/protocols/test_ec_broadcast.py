"""Integration tests for online-error-correction dissemination.

Payloads are byte strings carried as block fragments; the online decoder
runs the block engine's fold-locate-verify error decoding per attempt."""

import random

import pytest

from repro.codes import BlockFragment, ReedSolomon
from repro.protocols.ec_broadcast import EcParty, GarbageEcParty, OnlineDecoder
from repro.sim import build_world
from repro.sim.adversary import heaviest_under, most_tickets_under
from repro.weighted.transform import error_correction_setup

WEIGHTS = [40, 25, 15, 10, 5, 3, 1, 1]


def _fragments(code: ReedSolomon, payload: bytes) -> list[BlockFragment]:
    return [BlockFragment(j, b) for j, b in enumerate(code.encode_blocks(payload))]


class TestOnlineDecoder:
    def _make(self, k=3, m=9, seed=0, size=64):
        rng = random.Random(seed)
        code = ReedSolomon(k=k, m=m)
        data = rng.randbytes(size)
        fragments = _fragments(code, data)
        decoder = OnlineDecoder(
            ReedSolomon(k=k, m=m), OnlineDecoder.hash_data(data), len(data)
        )
        return data, fragments, decoder

    def test_decodes_with_k_clean_fragments(self):
        data, fragments, decoder = self._make()
        for f in fragments[:2]:
            assert decoder.add(f) is None
        assert decoder.add(fragments[2]) == data

    def test_garbage_absorbed_with_more_fragments(self):
        data, fragments, decoder = self._make()
        garbage = BlockFragment(0, bytes(b ^ 0x11 for b in fragments[0].block))
        decoder.add(garbage)
        for f in fragments[1:]:
            result = decoder.add(f)
        assert result == data

    def test_duplicate_index_keeps_first(self):
        data, fragments, decoder = self._make()
        decoder.add(fragments[0])
        decoder.add(BlockFragment(0, bytes(b ^ 1 for b in fragments[0].block)))
        assert len(decoder.fragments) == 1
        assert decoder.fragments[0] == fragments[0].block

    def test_out_of_range_index_ignored(self):
        data, fragments, decoder = self._make()
        decoder.add(BlockFragment(99, b"\x01" * len(fragments[0].block)))
        assert not decoder.fragments

    def test_attempt_counter(self):
        data, fragments, decoder = self._make()
        for f in fragments[:3]:
            decoder.add(f)
        assert decoder.attempts >= 1

    def test_wrong_hash_never_accepts(self):
        data, fragments, _ = self._make()
        decoder = OnlineDecoder(ReedSolomon(k=3, m=9), b"\x00" * 32, len(data))
        for f in fragments:
            assert decoder.add(f) is None


class TestEcProtocol:
    def _world(self, rate="1/4", seed=0, corrupt=frozenset(), size=48):
        # Section 5.2 layout: f_w = 1/3, code rate 1/4, beta_n = 5/8.
        setup = error_correction_setup(WEIGHTS, "1/3", rate)
        code = ReedSolomon(k=setup.data_shards, m=setup.total_shards)
        rng = random.Random(seed)
        data = rng.randbytes(size)
        fragments = _fragments(code, data)
        data_hash = OnlineDecoder.hash_data(data)

        def factory(pid):
            cls = GarbageEcParty if pid in corrupt else EcParty
            return cls(pid, code, setup.vmap)

        world = build_world(factory, len(WEIGHTS), seed=seed)
        for pid in range(len(WEIGHTS)):
            mine = [fragments[v] for v in setup.vmap.virtual_ids(pid)]
            world.party(pid).install(mine, data_hash, len(data))
        return setup, data, world

    def test_all_honest_reconstruct(self):
        setup, data, world = self._world()
        world.party(0).reconstruct()
        world.run()
        assert world.party(0).reconstructed == data

    def test_reconstruction_despite_garbage_byzantine(self):
        """Corrupt parties (weight < 1/3) answer with garbage; the
        error-correction budget absorbs them (Section 5.2)."""
        corrupt = frozenset(heaviest_under(WEIGHTS, "1/3"))
        setup, data, world = self._world(seed=1, corrupt=corrupt)
        reconstructor = next(p for p in range(len(WEIGHTS)) if p not in corrupt)
        world.party(reconstructor).reconstruct()
        world.run()
        assert world.party(reconstructor).reconstructed == data

    def test_reconstruction_against_ticket_greedy_adversary(self):
        """The worst adversary for the layout -- grabbing the most
        fragments its weight budget buys -- is still absorbed: WQ plus the
        rate condition guarantee honest fragments >= k + 2e."""
        probe = error_correction_setup(WEIGHTS, "1/3", "1/4")
        tickets = probe.result.assignment.to_list()
        corrupt = frozenset(most_tickets_under(WEIGHTS, tickets, "1/3"))
        setup, data, world = self._world(seed=5, corrupt=corrupt)
        corrupt_frags = sum(setup.vmap.tickets[i] for i in corrupt)
        assert corrupt_frags <= setup.error_budget(setup.total_shards)
        reconstructor = next(p for p in range(len(WEIGHTS)) if p not in corrupt)
        world.party(reconstructor).reconstruct()
        world.run()
        assert world.party(reconstructor).reconstructed == data

    def test_fragment_position_authenticated(self):
        """Fragments claimed for indices the sender does not own are
        dropped (channel identity authenticates positions in ADD)."""
        setup, data, world = self._world(seed=2)
        party = world.party(0)
        party.reconstruct()
        from repro.protocols.ec_broadcast import EcFragment

        foreign_index = next(iter(setup.vmap.virtual_ids(1)))
        blen = len(party.my_fragments[0].block)
        before = dict(party.decoder.fragments)
        party._handle_fragment(
            EcFragment(BlockFragment(foreign_index, b"\x07" * blen)), sender=0
        )
        assert party.decoder.fragments == before

    def test_requires_install(self):
        setup, data, world = self._world(seed=3)
        fresh = EcParty(99, world.party(0).code, setup.vmap)
        with pytest.raises(RuntimeError):
            fresh.reconstruct()

    def test_decode_work_counted(self):
        setup, data, world = self._world(seed=4)
        world.party(0).reconstruct()
        world.run()
        assert world.party(0).counters["decode_work"] > 0


class TestMalformedBlocks:
    def test_wrong_length_block_does_not_wedge_decoder(self):
        """A Byzantine fragment with a wrong-length block is dropped like
        any other garbage: honest fragments arriving later still decode
        (regression: it used to poison every subsequent attempt)."""
        rng = random.Random(7)
        code = ReedSolomon(k=3, m=9)
        data = rng.randbytes(30)
        fragments = _fragments(code, data)
        decoder = OnlineDecoder(
            ReedSolomon(k=3, m=9), OnlineDecoder.hash_data(data), len(data)
        )
        assert decoder.add(BlockFragment(0, b"\x01\x02")) is None  # malformed
        assert not decoder.fragments
        result = None
        for f in fragments[1:]:
            result = decoder.add(f)
            if result is not None:
                break
        assert result == data
