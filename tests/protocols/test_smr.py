"""Integration tests for the composed asynchronous SMR (Section 6.1)."""

import hashlib
import random

import pytest

from repro.protocols.smr import SmrParty, batch_position
from repro.sim import TargetedDelay, UniformDelay, build_world
from repro.sim.adversary import heaviest_under
from repro.weighted.quorum import NominalQuorums, WeightedQuorums

WEIGHTS = [40, 25, 15, 10, 5, 3, 1, 1]
N = len(WEIGHTS)


def deterministic_coin(epoch: int) -> int:
    """A stand-in coin: the real one is repro.protocols.common_coin."""
    return int.from_bytes(hashlib.sha256(f"smr|{epoch}".encode()).digest()[:4], "big")


def make_world(quorums, seed=0, delay=None, crashed=()):
    world = build_world(
        lambda pid: SmrParty(pid, N, quorums, deterministic_coin),
        N,
        seed=seed,
        delay_model=delay,
    )
    for pid in crashed:
        world.party(pid).crash()
    return world


class TestBatchPosition:
    def test_deterministic_and_distinct(self):
        positions = [batch_position(p, 12345, N) for p in range(N)]
        assert sorted(positions) == list(range(N))

    def test_rotation_depends_on_coin(self):
        a = [batch_position(p, 1, N) for p in range(N)]
        b = [batch_position(p, 2, N) for p in range(N)]
        assert a != b


class TestWeightedSmr:
    def test_all_replicas_same_log(self):
        quorums = WeightedQuorums(WEIGHTS, "1/3")
        world = make_world(quorums, seed=1)
        for epoch in (0, 1):
            for pid in range(N):
                world.party(pid).propose_batch(epoch, f"e{epoch}-p{pid}".encode())
        world.run()
        reference = world.party(0).ordered_log(0)
        assert len(reference) == N
        for pid in range(1, N):
            assert world.party(pid).ordered_log(0) == reference
            assert world.party(pid).ordered_log(1) == world.party(0).ordered_log(1)
        assert all(world.party(p).epoch_closed(0) for p in range(N))

    def test_liveness_with_corrupt_weight_crashed(self):
        corrupt = heaviest_under(WEIGHTS, "1/3")
        quorums = WeightedQuorums(WEIGHTS, "1/3")
        world = make_world(quorums, seed=2, crashed=tuple(corrupt))
        for pid in range(N):
            if pid not in corrupt:
                world.party(pid).propose_batch(0, f"b{pid}".encode())
        world.run()
        honest = [p for p in range(N) if p not in corrupt]
        logs = {tuple(world.party(p).ordered_log(0)) for p in honest}
        assert len(logs) == 1
        # Every live replica closed the epoch: delivered proposers carry
        # more than (1 - f_w) of the weight.
        assert all(world.party(p).epoch_closed(0) for p in honest)

    def test_positions_agree_under_adversarial_scheduling(self):
        quorums = WeightedQuorums(WEIGHTS, "1/3")
        delay = TargetedDelay(
            base=UniformDelay(), slow_parties=frozenset({2, 5}), factor=30.0
        )
        world = make_world(quorums, seed=3, delay=delay)
        for pid in range(N):
            world.party(pid).propose_batch(0, bytes([pid]))
        world.run()
        logs = {tuple(world.party(p).ordered_log(0)) for p in range(N)}
        assert len(logs) == 1

    def test_commit_counters(self):
        quorums = WeightedQuorums(WEIGHTS, "1/3")
        world = make_world(quorums, seed=4)
        world.party(0).propose_batch(0, b"solo")
        world.run()
        assert all(
            world.party(p).counters["batches_committed"] == 1 for p in range(N)
        )


class TestNominalSmr:
    def test_same_code_runs_nominal(self):
        quorums = NominalQuorums(n=N, t=2)
        world = make_world(quorums, seed=5)
        for pid in range(N):
            world.party(pid).propose_batch(7, f"n{pid}".encode())
        world.run()
        logs = {tuple(world.party(p).ordered_log(7)) for p in range(N)}
        assert len(logs) == 1
        assert len(next(iter(logs))) == N

    def test_non_proposer_send_ignored(self):
        quorums = NominalQuorums(n=N, t=2)
        world = make_world(quorums, seed=6)
        from repro.protocols.smr import BatchSend

        # Party 3 forges a SEND claiming to be proposer 5.
        world.network.send(3, 0, BatchSend(epoch=0, proposer=5, payload=b"forged"))
        world.run()
        assert world.party(0).ordered_log(0) == []
