"""Integration tests for Bracha broadcast, nominal and weighted."""

import pytest

from repro.protocols.reliable_broadcast import (
    BroadcastParty,
    EquivocatingSender,
    SilentParty,
)
from repro.sim import TargetedDelay, UniformDelay, build_world
from repro.weighted.quorum import NominalQuorums, WeightedQuorums

WEIGHTS = [40, 25, 15, 10, 5, 3, 1, 1]


def run_nominal(n=7, t=2, corrupt=(), sender=None, seed=0, delay=None):
    quorums = NominalQuorums(n=n, t=t)

    def factory(pid):
        if pid in corrupt:
            return SilentParty(pid)
        return BroadcastParty(pid, quorums)

    world = build_world(factory, n, seed=seed, delay_model=delay)
    src = sender if sender is not None else n - 1
    world.party(src).broadcast_value(b"payload")
    world.run()
    return world


class TestNominalBroadcast:
    def test_all_honest_deliver(self):
        world = run_nominal()
        for p in world.parties:
            if isinstance(p, BroadcastParty):
                assert p.delivered == b"payload"

    def test_tolerates_t_silent(self):
        world = run_nominal(corrupt=(0, 1))
        honest = [p for p in world.parties if isinstance(p, BroadcastParty)]
        assert all(p.delivered == b"payload" for p in honest)

    def test_fails_beyond_t_silent(self):
        """With t+1 silent parties (more than tolerated), delivery may
        stall -- totality needs n - t responsive parties."""
        world = run_nominal(corrupt=(0, 1, 2))
        honest = [p for p in world.parties if isinstance(p, BroadcastParty)]
        assert all(p.delivered is None for p in honest)

    def test_message_complexity_quadratic(self):
        world = run_nominal()
        # SEND n + ECHO n^2 + READY n^2 order of magnitude.
        n = 7
        assert n <= world.metrics.messages <= 3 * n * n

    def test_agreement_under_equivocation(self):
        n, t = 7, 2
        quorums = NominalQuorums(n=n, t=t)

        def factory(pid):
            if pid == 0:
                return EquivocatingSender(pid, quorums)
            return BroadcastParty(pid, quorums)

        world = build_world(factory, n, seed=3)
        world.party(0).broadcast_two(b"A", b"B")
        world.run()
        delivered = {
            p.delivered
            for p in world.parties
            if isinstance(p, BroadcastParty) and p.pid != 0 and p.delivered
        }
        # Agreement: never both values.
        assert len(delivered) <= 1

    def test_adversarial_scheduling_preserves_totality(self):
        delay = TargetedDelay(
            base=UniformDelay(), slow_parties=frozenset({3, 4}), factor=40.0
        )
        world = run_nominal(delay=delay, seed=8)
        honest = [p for p in world.parties if isinstance(p, BroadcastParty)]
        assert all(p.delivered == b"payload" for p in honest)


class TestWeightedBroadcast:
    def test_all_deliver(self):
        quorums = WeightedQuorums(WEIGHTS, "1/3")
        world = build_world(lambda pid: BroadcastParty(pid, quorums), 8, seed=1)
        world.party(0).broadcast_value(b"w")
        world.run()
        assert all(p.delivered == b"w" for p in world.parties)

    def test_tolerates_corrupt_weight_below_third(self):
        from repro.sim.adversary import heaviest_under

        corrupt = heaviest_under(WEIGHTS, "1/3")
        quorums = WeightedQuorums(WEIGHTS, "1/3")

        def factory(pid):
            if pid in corrupt:
                return SilentParty(pid)
            return BroadcastParty(pid, quorums)

        world = build_world(factory, 8, seed=2)
        sender = next(p for p in range(8) if p not in corrupt)
        world.party(sender).broadcast_value(b"w")
        world.run()
        honest = [p for p in world.parties if isinstance(p, BroadcastParty)]
        assert all(p.delivered == b"w" for p in honest)

    def test_same_code_both_models(self):
        """The same BroadcastParty class runs nominal and weighted --
        the weighted-voting observation of Section 1.2."""
        n = 4
        nominal = NominalQuorums(n=n, t=1)
        weighted = WeightedQuorums([1] * n, "1/3")
        for quorums in (nominal, weighted):
            world = build_world(lambda pid: BroadcastParty(pid, quorums), n, seed=5)
            world.party(0).broadcast_value(b"x")
            world.run()
            assert all(p.delivered == b"x" for p in world.parties)
