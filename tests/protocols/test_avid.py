"""Integration tests for AVID erasure-coded storage, weighted and nominal."""

import random

import pytest

from repro.codes import ReedSolomon
from repro.protocols.avid import AvidParty, fragment_digest
from repro.sim import build_world
from repro.sim.adversary import heaviest_under
from repro.sim.process import Party
from repro.weighted.quorum import NominalQuorums, WeightedQuorums
from repro.weighted.transform import qualification_setup
from repro.weighted.virtual import VirtualUserMap

WEIGHTS = [40, 25, 15, 10, 5, 3, 1, 1]


class TestNominalAvid:
    def test_disperse_store_retrieve(self):
        n, t = 7, 2
        quorums = NominalQuorums(n=n, t=t)
        world = build_world(lambda pid: AvidParty(pid, quorums), n, seed=0)
        code = ReedSolomon(k=t + 1, m=n)  # the (t+1, n) layout of [17]
        data = [random.Random(1).randrange(256) for _ in range(t + 1)]
        vmap = VirtualUserMap([1] * n)
        commitment = world.party(0).disperse(data, code, vmap)
        world.run()
        assert all(p.stored_commitment == commitment for p in world.parties)
        world.party(3).retrieve(commitment)
        world.run()
        assert world.party(3).retrieved == data

    def test_retrieval_with_t_crashes_after_storage(self):
        n, t = 7, 2
        quorums = NominalQuorums(n=n, t=t)
        world = build_world(lambda pid: AvidParty(pid, quorums), n, seed=1)
        code = ReedSolomon(k=t + 1, m=n)
        data = [5, 6, 7]
        commitment = world.party(0).disperse(data, code, VirtualUserMap([1] * n))
        world.run()
        for pid in (1, 2):
            world.party(pid).crash()
        world.party(6).retrieve(commitment)
        world.run()
        assert world.party(6).retrieved == data


class TestWeightedAvid:
    def _setup_world(self, beta_n="1/4", seed=0):
        setup = qualification_setup(WEIGHTS, "1/3", beta_n)
        quorums = WeightedQuorums(WEIGHTS, "1/3")
        code = ReedSolomon(k=setup.data_shards, m=setup.total_shards)
        world = build_world(lambda pid: AvidParty(pid, quorums), len(WEIGHTS), seed=seed)
        return setup, code, world

    def test_disperse_store_retrieve(self):
        setup, code, world = self._setup_world()
        data = [random.Random(2).randrange(256) for _ in range(code.k)]
        commitment = world.party(0).disperse(data, code, setup.vmap)
        world.run()
        assert all(p.stored_commitment == commitment for p in world.parties)
        world.party(7).retrieve(commitment)
        world.run()
        assert world.party(7).retrieved == data

    def test_fragments_follow_tickets(self):
        setup, code, world = self._setup_world()
        data = [1] * code.k
        world.party(0).disperse(data, code, setup.vmap)
        world.run()
        for pid in range(len(WEIGHTS)):
            assert len(world.party(pid).my_fragments) == setup.vmap.tickets[pid]

    def test_retrieval_despite_corrupt_weight(self):
        """After storage, parties holding < f_w weight crash; the honest
        part of the storage quorum still reconstructs (Section 5.1)."""
        setup, code, world = self._setup_world(seed=3)
        data = [random.Random(3).randrange(256) for _ in range(code.k)]
        commitment = world.party(0).disperse(data, code, setup.vmap)
        world.run()
        corrupt = heaviest_under(WEIGHTS, "1/3")
        for pid in corrupt:
            world.party(pid).crash()
        retriever = next(p for p in range(len(WEIGHTS)) if p not in corrupt)
        world.party(retriever).retrieve(commitment)
        world.run()
        assert world.party(retriever).retrieved == data

    def test_inconsistent_dealer_not_stored(self):
        """A dealer whose fragments do not match the hash list gets no
        echoes and the data is never marked stored."""
        setup, code, world = self._setup_world(seed=4)
        fragments = code.encode([9] * code.k)
        from repro.protocols.avid import AvidDisperse, _hash_fragment

        bogus_hashes = tuple(b"\x00" * 32 for _ in fragments)
        msg = AvidDisperse(
            fragments=tuple(fragments[:1]),
            hash_list=bogus_hashes,
            commitment=b"bogus",
            data_shards=code.k,
            total_shards=code.m,
        )
        world.network.send(0, 1, msg)
        world.run()
        assert all(p.stored_commitment is None for p in world.parties)


class TestFragmentDigest:
    def test_deterministic_and_sensitive(self):
        code = ReedSolomon(k=2, m=4)
        frags_a = code.encode([1, 2])
        frags_b = code.encode([1, 3])
        assert fragment_digest(frags_a) == fragment_digest(frags_a)
        assert fragment_digest(frags_a) != fragment_digest(frags_b)
