"""Integration tests for AVID erasure-coded storage, weighted and nominal.

Payloads are byte strings carried as block fragments end to end (the
vectorized coding engine); retrieval must hand back the exact bytes."""

import random

import pytest

from repro.codes import ReedSolomon
from repro.protocols.avid import AvidParty, fragment_digest
from repro.sim import build_world
from repro.sim.adversary import heaviest_under
from repro.sim.process import Party
from repro.weighted.quorum import NominalQuorums, WeightedQuorums
from repro.weighted.transform import qualification_setup
from repro.weighted.virtual import VirtualUserMap

WEIGHTS = [40, 25, 15, 10, 5, 3, 1, 1]


def _payload(seed: int, size: int) -> bytes:
    return random.Random(seed).randbytes(size)


class TestNominalAvid:
    def test_disperse_store_retrieve(self):
        n, t = 7, 2
        quorums = NominalQuorums(n=n, t=t)
        world = build_world(lambda pid: AvidParty(pid, quorums), n, seed=0)
        code = ReedSolomon(k=t + 1, m=n)  # the (t+1, n) layout of [17]
        data = _payload(1, 100)
        vmap = VirtualUserMap([1] * n)
        commitment = world.party(0).disperse(data, code, vmap)
        world.run()
        assert all(p.stored_commitment == commitment for p in world.parties)
        world.party(3).retrieve(commitment)
        world.run()
        assert world.party(3).retrieved == data

    def test_retrieval_with_t_crashes_after_storage(self):
        n, t = 7, 2
        quorums = NominalQuorums(n=n, t=t)
        world = build_world(lambda pid: AvidParty(pid, quorums), n, seed=1)
        code = ReedSolomon(k=t + 1, m=n)
        data = b"\x05\x06\x07"
        commitment = world.party(0).disperse(data, code, VirtualUserMap([1] * n))
        world.run()
        for pid in (1, 2):
            world.party(pid).crash()
        world.party(6).retrieve(commitment)
        world.run()
        assert world.party(6).retrieved == data


class TestWeightedAvid:
    def _setup_world(self, beta_n="1/4", seed=0):
        setup = qualification_setup(WEIGHTS, "1/3", beta_n)
        quorums = WeightedQuorums(WEIGHTS, "1/3")
        code = ReedSolomon(k=setup.data_shards, m=setup.total_shards)
        world = build_world(lambda pid: AvidParty(pid, quorums), len(WEIGHTS), seed=seed)
        return setup, code, world

    def test_disperse_store_retrieve(self):
        setup, code, world = self._setup_world()
        data = _payload(2, 5 * code.k)  # several stripes
        commitment = world.party(0).disperse(data, code, setup.vmap)
        world.run()
        assert all(p.stored_commitment == commitment for p in world.parties)
        world.party(7).retrieve(commitment)
        world.run()
        assert world.party(7).retrieved == data

    def test_fragments_follow_tickets(self):
        setup, code, world = self._setup_world()
        data = b"\x01" * code.k
        world.party(0).disperse(data, code, setup.vmap)
        world.run()
        for pid in range(len(WEIGHTS)):
            assert len(world.party(pid).my_fragments) == setup.vmap.tickets[pid]

    def test_retrieval_despite_corrupt_weight(self):
        """After storage, parties holding < f_w weight crash; the honest
        part of the storage quorum still reconstructs (Section 5.1)."""
        setup, code, world = self._setup_world(seed=3)
        data = _payload(3, 2 * code.k + 1)  # padding exercised
        commitment = world.party(0).disperse(data, code, setup.vmap)
        world.run()
        corrupt = heaviest_under(WEIGHTS, "1/3")
        for pid in corrupt:
            world.party(pid).crash()
        retriever = next(p for p in range(len(WEIGHTS)) if p not in corrupt)
        world.party(retriever).retrieve(commitment)
        world.run()
        assert world.party(retriever).retrieved == data

    def test_inconsistent_dealer_not_stored(self):
        """A dealer whose fragments do not match the hash list gets no
        echoes and the data is never marked stored."""
        setup, code, world = self._setup_world(seed=4)
        blocks = code.encode_blocks(b"\x09" * code.k)
        from repro.codes import BlockFragment
        from repro.protocols.avid import AvidDisperse

        fragments = [BlockFragment(j, b) for j, b in enumerate(blocks)]
        bogus_hashes = tuple(b"\x00" * 32 for _ in fragments)
        msg = AvidDisperse(
            fragments=tuple(fragments[:1]),
            hash_list=bogus_hashes,
            commitment=b"bogus",
            data_shards=code.k,
            total_shards=code.m,
            original_length=code.k,
        )
        world.network.send(0, 1, msg)
        world.run()
        assert all(p.stored_commitment is None for p in world.parties)


class TestFragmentDigest:
    def test_deterministic_and_sensitive(self):
        from repro.codes import BlockFragment

        code = ReedSolomon(k=2, m=4)
        frags_a = [
            BlockFragment(j, b) for j, b in enumerate(code.encode_blocks(b"\x01\x02"))
        ]
        frags_b = [
            BlockFragment(j, b) for j, b in enumerate(code.encode_blocks(b"\x01\x03"))
        ]
        assert fragment_digest(frags_a) == fragment_digest(frags_a)
        assert fragment_digest(frags_a) != fragment_digest(frags_b)


class TestByzantineDealer:
    def test_mixed_length_blocks_cannot_crash_retriever(self):
        """A Byzantine dealer hands different parties blocks of different
        lengths (each matching its own hash-list entry).  Honest parties
        must refuse to echo the mismatched geometry and a retriever must
        never crash on an inconsistent fragment set (regression: the
        block decoder's length check used to escape the handler)."""
        import hashlib

        from repro.codes import BlockFragment
        from repro.protocols.avid import AvidDisperse, AvidFragments, fragment_digest

        n, t = 7, 2
        quorums = NominalQuorums(n=n, t=t)
        world = build_world(lambda pid: AvidParty(pid, quorums), n, seed=9)
        code = ReedSolomon(k=t + 1, m=n)
        data = b"\x01\x02\x03\x04\x05\x06"  # 2 stripes -> blocks of 2 bytes
        blocks = code.encode_blocks(data)
        fragments = [BlockFragment(j, b) for j, b in enumerate(blocks)]
        # dealer equivocates: fragment 1's hash covers a 4-byte block
        long_block = blocks[1] + b"\x00\x00"
        mixed = list(fragments)
        mixed[1] = BlockFragment(1, long_block)
        hash_list = tuple(
            hashlib.sha256(f.block).digest() for f in mixed
        )
        commitment = fragment_digest(mixed)

        def disperse_to(pid, frag):
            world.network.send(
                0,
                pid,
                AvidDisperse(
                    fragments=(frag,),
                    hash_list=hash_list,
                    commitment=commitment,
                    data_shards=code.k,
                    total_shards=code.m,
                    original_length=len(data),
                ),
            )

        for pid in range(n):
            disperse_to(pid, mixed[pid])
        world.run()
        # party 1 got the over-long block: it must refuse to echo it
        assert not world.party(1).my_fragments
        # force-feed a retriever the mismatched fragment directly: it is
        # dropped, and a later decode with consistent fragments succeeds
        retriever = world.party(6)
        retriever._handle_fragments(
            AvidFragments(commitment=commitment, fragments=(mixed[1],)), sender=1
        )
        assert 1 not in retriever._collected
        for j in (0, 2, 3):
            retriever._handle_fragments(
                AvidFragments(commitment=commitment, fragments=(fragments[j],)),
                sender=j,
            )
        assert retriever.retrieved == data

    def test_malformed_geometry_cannot_crash_storer(self):
        """data_shards=0, out-of-range and negative fragment indices from
        a Byzantine dealer are refused without raising."""
        from repro.codes import BlockFragment
        from repro.protocols.avid import AvidDisperse, AvidFragments

        n, t = 7, 2
        quorums = NominalQuorums(n=n, t=t)
        world = build_world(lambda pid: AvidParty(pid, quorums), n, seed=10)

        def send_disperse(**overrides):
            fields = dict(
                fragments=(BlockFragment(0, b"\x01"),),
                hash_list=tuple(b"\x00" * 32 for _ in range(n)),
                commitment=b"c" * 32,
                data_shards=3,
                total_shards=n,
                original_length=3,
            )
            fields.update(overrides)
            world.network.send(0, 1, AvidDisperse(**fields))

        send_disperse(data_shards=0)                      # div-by-zero bait
        send_disperse(data_shards=9)                      # k > m
        send_disperse(original_length=-1)
        send_disperse(fragments=(BlockFragment(99, b"\x01"),))
        send_disperse(fragments=(BlockFragment(-1, b"\x01"),))
        send_disperse(hash_list=(b"\x00" * 32,))          # wrong list length
        world.run()  # must not raise
        assert all(p.stored_commitment is None for p in world.parties)

        # negative index on the retrieval path is dropped, not collected
        code = ReedSolomon(k=t + 1, m=n)
        data = b"\x01\x02\x03"
        commitment = world.party(0).disperse(data, code, VirtualUserMap([1] * n))
        world.run()
        retriever = world.party(5)
        block = retriever.my_fragments[0].block
        retriever.retrieve(commitment)
        retriever._handle_fragments(
            AvidFragments(
                commitment=commitment,
                fragments=(BlockFragment(5 - n, block),),
            ),
            sender=5,
        )
        assert all(i >= 0 for i in retriever._collected)

    def test_commitment_must_bind_hash_list(self):
        """An equivocating dealer reusing one commitment across two hash
        lists is refused: the storer recomputes the binding."""
        from repro.codes import BlockFragment
        from repro.protocols.avid import AvidDisperse, fragment_digest

        n, t = 7, 2
        quorums = NominalQuorums(n=n, t=t)
        world = build_world(lambda pid: AvidParty(pid, quorums), n, seed=11)
        code = ReedSolomon(k=t + 1, m=n)
        blocks_a = code.encode_blocks(b"\x01\x02\x03")
        blocks_b = code.encode_blocks(b"\x04\x05\x06")
        frags_a = [BlockFragment(j, b) for j, b in enumerate(blocks_a)]
        frags_b = [BlockFragment(j, b) for j, b in enumerate(blocks_b)]
        commitment = fragment_digest(frags_a)
        import hashlib

        hashes_b = tuple(hashlib.sha256(f.block).digest() for f in frags_b)
        # commitment of list A shipped with list B: must be refused
        world.network.send(
            0,
            1,
            AvidDisperse(
                fragments=(frags_b[1],),
                hash_list=hashes_b,
                commitment=commitment,
                data_shards=code.k,
                total_shards=code.m,
                original_length=3,
            ),
        )
        world.run()
        assert not world.party(1).my_fragments
