"""Integration tests: beacon, VABA (nominal + black-box), SSLE, checkpoints."""

import random

import pytest

from repro.crypto import ThresholdSignatureScheme, WeightedCoin
from repro.crypto.group import TEST_GROUP_256 as G
from repro.protocols.checkpointing import CheckpointParty
from repro.protocols.common_coin import BeaconParty
from repro.protocols.ssle import SsleElection, chain_quality
from repro.protocols.vaba import VabaParty, WeightedVabaRunner
from repro.sim import build_world
from repro.sim.adversary import heaviest_under, most_tickets_under
from repro.weighted.transform import black_box_setup, blunt_setup

WEIGHTS = [40, 25, 15, 10, 5, 3, 1, 1]


class TestBeaconProtocol:
    def _world(self, seed=0):
        rng = random.Random(seed)
        setup = blunt_setup(WEIGHTS, "1/3", "1/2")
        coin = WeightedCoin(G, setup.result.assignment, "1/2", rng)
        world = build_world(
            lambda pid: BeaconParty(pid, coin, random.Random(1000 + pid)),
            len(WEIGHTS),
            seed=seed,
        )
        return setup, coin, world

    def test_all_parties_agree_on_value(self):
        setup, coin, world = self._world()
        for pid in setup.vmap.parties_with_tickets():
            world.party(pid).start_epoch(1)
        world.run()
        values = {p.values.get(1) for p in world.parties}
        assert len(values) == 1 and None not in values

    def test_multiple_epochs_differ(self):
        setup, coin, world = self._world(seed=1)
        for epoch in (1, 2):
            for pid in setup.vmap.parties_with_tickets():
                world.party(pid).start_epoch(epoch)
        world.run()
        p0 = world.party(0)
        assert p0.values[1] != p0.values[2]

    def test_corrupt_coalition_cannot_open_alone(self):
        setup, coin, world = self._world(seed=2)
        tickets = setup.result.assignment.to_list()
        corrupt = most_tickets_under(WEIGHTS, tickets, "1/3")
        for pid in sorted(corrupt):
            world.party(pid).start_epoch(5)
        world.run()
        # Nobody reaches the threshold with only corrupt shares.
        assert all(5 not in p.values for p in world.parties)

    def test_share_counters(self):
        setup, coin, world = self._world(seed=3)
        for pid in setup.vmap.parties_with_tickets():
            world.party(pid).start_epoch(1)
        world.run()
        signed = sum(p.counters["shares_signed"] for p in world.parties)
        assert signed == setup.total_virtual


class TestNominalVaba:
    def run_vaba(self, n, t, inputs, crashed=(), seed=0, coin_seed=0):
        world = build_world(
            lambda pid: VabaParty(pid, n, t, coin_seed=coin_seed), n, seed=seed
        )
        for pid in crashed:
            world.party(pid).crash()
        for pid, value in inputs.items():
            if pid not in crashed:
                world.party(pid).propose(value)
        world.run()
        return world

    def test_agreement_and_liveness(self):
        n = 7
        inputs = {i: f"v{i}".encode() for i in range(n)}
        world = self.run_vaba(n, 2, inputs)
        decided = {p.decided for p in world.parties}
        assert len(decided) == 1 and None not in decided

    def test_integrity(self):
        """All-honest run decides some party's input (Definition 4.3)."""
        n = 4
        inputs = {i: f"input-{i}".encode() for i in range(n)}
        world = self.run_vaba(n, 1, inputs, seed=2)
        decided = next(iter({p.decided for p in world.parties}))
        assert decided in inputs.values()

    def test_tolerates_t_crashes(self):
        n, t = 10, 3
        inputs = {i: b"shared" for i in range(n)}
        world = self.run_vaba(n, t, inputs, crashed=(0, 1, 2), seed=3)
        live = [world.party(p).decided for p in range(3, n)]
        assert all(d == b"shared" for d in live)

    def test_external_validity(self):
        n = 4
        valid = lambda v: v.startswith(b"ok")
        world = build_world(
            lambda pid: VabaParty(pid, n, 1, validity_predicate=valid), n, seed=4
        )
        with pytest.raises(ValueError):
            world.party(0).propose(b"bad")
        for pid in range(n):
            world.party(pid).propose(b"ok" + bytes([pid]))
        world.run()
        decided = next(iter({p.decided for p in world.parties}))
        assert decided.startswith(b"ok")

    def test_agreement_over_many_seeds(self):
        for seed in range(6):
            n = 4
            inputs = {i: f"s{seed}-{i}".encode() for i in range(n)}
            world = self.run_vaba(n, 1, inputs, seed=seed, coin_seed=seed)
            decided = {p.decided for p in world.parties}
            assert len(decided) == 1 and None not in decided, (seed, decided)


class TestBlackBoxVaba:
    def test_weighted_agreement_via_virtual_users(self):
        setup = black_box_setup(WEIGHTS, "1/3", "1/12")
        runner = WeightedVabaRunner(setup.vmap, WEIGHTS, setup.f_w, coin_seed=5)
        outputs: dict[int, bytes] = {}
        parties = runner.build_parties(
            setup.f_n, on_decide=lambda vid, v: outputs.setdefault(vid, v)
        )
        from repro.sim import build_world as bw

        world = bw(lambda vid: parties[vid], runner.n_virtual, seed=6)
        # Real party i injects its input through all its virtual users.
        for real in range(len(WEIGHTS)):
            value = f"real-{real}".encode()
            for vid in setup.vmap.virtual_ids(real):
                world.party(vid).propose(value)
        world.run()
        assert len(set(outputs.values())) == 1
        real_out = runner.real_output(outputs)
        # Every real party (including zero-ticket ones) gets the value.
        assert set(real_out) == set(range(len(WEIGHTS)))
        assert len(set(real_out.values())) == 1

    def test_virtual_fault_budget_matches_wr(self):
        setup = black_box_setup(WEIGHTS, "1/3", "1/12")
        runner = WeightedVabaRunner(setup.vmap, WEIGHTS, setup.f_w)
        tickets = setup.result.assignment.to_list()
        corrupt = most_tickets_under(WEIGHTS, tickets, setup.f_w)
        corrupt_virtual = len(setup.vmap.corrupted_virtual(corrupt))
        assert corrupt_virtual <= runner.virtual_fault_budget(setup.f_n)


class TestSsle:
    def test_only_owner_claims(self):
        setup = black_box_setup(WEIGHTS, "1/3", "1/12")
        election = SsleElection(setup.vmap, beacon_seed=1)
        result = election.elect(epoch=10)
        for party in range(len(WEIGHTS)):
            assert election.claim(party, 10) == (party == result.leader)
            assert election.verify_claim(party, 10) == (party == result.leader)

    def test_chain_quality_bounded_by_ticket_fraction(self):
        """Corrupt win rate tracks the corrupt ticket fraction, which WR
        keeps below f_n (the relaxed chain-quality property)."""
        setup = black_box_setup(WEIGHTS, "1/3", "1/12")
        tickets = setup.result.assignment.to_list()
        corrupt = most_tickets_under(WEIGHTS, tickets, setup.f_w)
        election = SsleElection(setup.vmap, beacon_seed=2)
        quality = chain_quality(election, corrupt, epochs=3000)
        ticket_frac = setup.vmap.corrupted_fraction(corrupt)
        assert ticket_frac < float(setup.f_n)
        # Sampling tolerance: 3000 epochs, noise well under 5 points.
        assert quality <= ticket_frac + 0.05

    def test_leader_distribution_uniform_over_tickets(self):
        vmap_tickets = [3, 1, 0, 2]
        from repro.weighted.virtual import VirtualUserMap

        election = SsleElection(VirtualUserMap(vmap_tickets), beacon_seed=3)
        wins = [0, 0, 0, 0]
        epochs = 6000
        for e in range(epochs):
            wins[election.elect(e).leader] += 1
        for party, t in enumerate(vmap_tickets):
            assert abs(wins[party] / epochs - t / 6) < 0.03

    def test_empty_map_rejected(self):
        from repro.weighted.virtual import VirtualUserMap

        with pytest.raises(ValueError):
            SsleElection(VirtualUserMap([0, 0]))

    def test_epochs_validation(self):
        setup = black_box_setup(WEIGHTS, "1/3", "1/12")
        election = SsleElection(setup.vmap)
        with pytest.raises(ValueError):
            chain_quality(election, set(), 0)


class TestCheckpointing:
    def _world(self, mode, seed=0):
        rng = random.Random(seed)
        setup = blunt_setup(WEIGHTS, "1/3", "1/2")
        scheme = ThresholdSignatureScheme(G, setup.total_virtual, setup.threshold)
        scheme.keygen(rng)

        def factory(pid):
            return CheckpointParty(
                pid,
                scheme,
                setup.vmap,
                random.Random(5000 + pid),
                mode=mode,
                weights=WEIGHTS if mode == "tight" else None,
                beta="1/2" if mode == "tight" else None,
            )

        return setup, build_world(factory, len(WEIGHTS), seed=seed)

    def test_blunt_certification(self):
        setup, world = self._world("blunt")
        cp = b"cp-100"
        for pid in range(len(WEIGHTS)):
            world.party(pid).sign_checkpoint(cp)
        world.run()
        certs = {p.certificates.get(cp) for p in world.parties}
        assert len(certs) == 1 and None not in certs

    def test_tight_requires_weighted_votes(self):
        setup, world = self._world("tight", seed=1)
        cp = b"cp-200"
        # Only a light coalition (< beta weight) signs: no certificate.
        for pid in (4, 5, 6, 7):  # weight 10 of 100
            world.party(pid).sign_checkpoint(cp)
        world.run()
        assert all(cp not in p.certificates for p in world.parties)
        # The heavy parties join: certificate forms.
        for pid in (0, 1, 2, 3):
            world.party(pid).sign_checkpoint(cp)
        world.run()
        assert all(cp in p.certificates for p in world.parties)

    def test_tight_mode_extra_round_costs_messages(self):
        """Tight mode sends the extra vote round (paper: +1 message delay
        per checkpoint)."""
        _, blunt_world = self._world("blunt", seed=2)
        _, tight_world = self._world("tight", seed=2)
        cp = b"cp-300"
        for world in (blunt_world, tight_world):
            for pid in range(len(WEIGHTS)):
                world.party(pid).sign_checkpoint(cp)
            world.run()
        assert (
            tight_world.metrics.by_type.get("CheckpointVote", 0)
            > 0
        )
        assert blunt_world.metrics.by_type.get("CheckpointVote", 0) == 0

    def test_mode_validation(self):
        setup = blunt_setup(WEIGHTS, "1/3", "1/2")
        scheme = ThresholdSignatureScheme(G, setup.total_virtual, setup.threshold)
        scheme.keygen(random.Random(0))
        with pytest.raises(ValueError):
            CheckpointParty(0, scheme, setup.vmap, random.Random(0), mode="loose")
        with pytest.raises(ValueError):
            CheckpointParty(0, scheme, setup.vmap, random.Random(0), mode="tight")
