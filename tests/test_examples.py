"""Smoke tests: every example script runs to completion.

The examples double as end-to-end integration tests of the public API
(solver -> transformations -> crypto -> simulator -> protocols).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print their findings"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3, "paper reproduction requires >= 3 examples"
