"""Delivery idempotence: duplicated and reordered delivery must not change
what any protocol decides.

Each case runs a protocol fault-free on the sim, then re-runs it with
ambient weather (duplication + reordering + jitter, zero loss) under the
same seed.  RBC, SMR, and checkpointing must decide byte-identically to
the fault-free baseline; VABA's decided value may legitimately depend on
delivery timing, so it is held to within-run agreement plus seeded
repeatability instead.  SMR additionally pins ``duplicate_commits == 0``:
no ordered log commits the same proposer twice in one epoch.
"""

import json

import pytest

from repro.chaos.schedule import ChaosSpec
from repro.chaos.weather import WeatherSpec
from repro.scenarios import run_scenario
from repro.scenarios.spec import ScenarioSpec, WeightSpec, WorkloadSpec

STORM = WeatherSpec(duplicate=0.25, reorder=0.3, jitter=0.02)

WEIGHTS = WeightSpec(kind="explicit", values=(40, 25, 15, 10, 5, 3, 1, 1))


def _spec(protocol, *, weather=None, seed=11, **kwargs):
    return ScenarioSpec(
        name=f"idempotence-{protocol}",
        protocol=protocol,
        weights=kwargs.pop("weights", WEIGHTS),
        workload=kwargs.pop("workload", WorkloadSpec(payload_size=32)),
        seed=seed,
        chaos=ChaosSpec(weather=weather) if weather is not None else None,
        **kwargs,
    )


class TestDecisionStability:
    @pytest.mark.parametrize("protocol", ["rbc", "smr", "checkpoint"])
    def test_decides_identically_under_duplication_and_reordering(self, protocol):
        baseline = run_scenario(_spec(protocol), backend="sim")
        stormy = run_scenario(_spec(protocol, weather=STORM), backend="sim")
        assert baseline.completed and stormy.completed
        assert stormy.decided == baseline.decided
        counters = stormy.record()["chaos"]["weather"]["counters"]
        assert counters["duplicated"] > 0  # the storm actually blew

    def test_smr_logs_stay_duplicate_free(self):
        spec = _spec(
            "smr", weather=STORM, workload=WorkloadSpec(payload_size=32, epochs=2)
        )
        record = run_scenario(spec, backend="sim").record()
        assert record["completed"]
        assert record["chaos"]["duplicate_commits"] == 0

    def test_vaba_agreement_and_repeatability_under_weather(self):
        spec = _spec(
            "vaba",
            weather=STORM,
            weights=WeightSpec(
                kind="explicit", values=(18, 15, 12, 11, 10, 9, 9, 8, 5, 3)
            ),
            params=(("f_n", "1/3"), ("epsilon", "1/12")),
        )
        first = run_scenario(spec, backend="sim")
        assert first.completed
        # agreement within the run...
        assert len(set(first.decided.values())) == 1
        # ...and the whole stormy record reproduces under the same seed
        second = run_scenario(spec, backend="sim")
        assert json.dumps(first.record(), sort_keys=True) == json.dumps(
            second.record(), sort_keys=True
        )

    def test_inproc_decides_identically_under_weather(self):
        # The same idempotence claim on the live runtime: the transport's
        # duplicate dispatches must collapse to one logical delivery.
        baseline = run_scenario(_spec("rbc"), backend="sim")
        stormy = run_scenario(
            _spec("rbc", weather=STORM), backend="inproc", timeout=30
        )
        assert stormy.completed
        assert stormy.decided == baseline.decided
