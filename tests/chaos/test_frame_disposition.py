"""Send-point frame disposition: a frame to a partitioned (or crashed)
peer is deterministically dropped-and-counted at the *send* point on every
backend -- never buffered into an ambiguous in-flight fate."""

import asyncio
from dataclasses import dataclass

from repro.protocols.reliable_broadcast import BroadcastParty
from repro.runtime import FaultController, run_cluster
from repro.runtime.transport import InProcTransport
from repro.sim.events import Simulator
from repro.sim.network import Network, UniformDelay
from repro.sim.process import Party
from repro.weighted.quorum import WeightedQuorums


@dataclass(frozen=True)
class Ping:
    payload: bytes = b""


class Recorder(Party):
    def __init__(self, pid):
        super().__init__(pid)
        self.inbox = []
        self.on(Ping, lambda m, s: self.inbox.append((s, m)))


class TestCondemnAtSend:
    def test_partitioned_send_condemned_once(self):
        faults = FaultController()
        faults.partition({0}, {1})
        assert faults.condemn(0, 1)
        assert faults.dropped_messages == 1
        # the trace records the fate at the send point
        assert list(faults.trace)[-1] == (0, 1, "condemned")

    def test_clean_send_traced_but_not_counted(self):
        faults = FaultController()
        assert not faults.condemn(0, 1)
        assert faults.dropped_messages == 0
        assert list(faults.trace)[-1] == (0, 1, "sent")

    def test_crashed_peer_condemned(self):
        faults = FaultController()
        faults.crash(1)
        assert faults.condemn(0, 1)
        assert faults.condemn(1, 0)  # both directions
        assert faults.dropped_messages == 2


class TestSimNetwork:
    def test_partitioned_frame_never_scheduled(self):
        sim = Simulator()
        faults = FaultController()
        faults.partition({0}, {1})
        net = Network(sim, UniformDelay(), seed=0, faults=faults)
        a, b = Recorder(0), Recorder(1)
        net.register(a)
        net.register(b)
        net.send(0, 1, Ping())
        sim.run()
        assert b.inbox == []
        assert faults.dropped_messages == 1
        # metered before condemnation: counts stay comparable under faults
        assert net.metrics.messages == 1


class TestInProcTransport:
    def test_partitioned_frame_dropped_at_send(self):
        async def scenario():
            faults = FaultController()
            faults.partition({0}, {1})
            from repro.protocols.reliable_broadcast import RbcSend
            from repro.runtime.codec import default_registry

            transport = InProcTransport(default_registry(), faults=faults)
            received = []
            transport.bind(0, lambda src, m: received.append((src, m)))
            transport.bind(1, lambda src, m: received.append((src, m)))
            await transport.start()
            await transport.send(0, 1, RbcSend(payload=b"doomed"))
            assert transport.quiescent  # fate decided at send: no in-flight
            await transport.stop()
            return faults.dropped_messages, received

        dropped, received = asyncio.run(scenario())
        assert dropped == 1
        assert received == []

    def test_drop_counts_match_the_sim_exactly(self):
        # One broadcast across a static partition: the cross-group frames
        # are condemned at send on both backends, so the counters -- not
        # just the outcomes -- agree exactly.
        weights = [10, 10, 10, 10]
        quorums = WeightedQuorums(weights, "1/3")
        groups = ({0, 1}, {2, 3})

        sim = Simulator()
        sim_faults = FaultController()
        sim_faults.partition(*groups)
        net = Network(sim, UniformDelay(), seed=0, faults=sim_faults)
        sim_parties = [BroadcastParty(i, quorums) for i in range(4)]
        for p in sim_parties:
            net.register(p)
        sim_parties[0].broadcast_value(b"split")
        sim.run()

        live_faults = FaultController()

        def setup(cluster):
            live_faults.partition(*groups)
            cluster.party(0).broadcast_value(b"split")

        run_cluster(
            lambda pid: BroadcastParty(pid, quorums),
            4,
            faults=live_faults,
            setup=setup,
        )
        assert sim_faults.dropped_messages > 0
        assert live_faults.dropped_messages == sim_faults.dropped_messages
