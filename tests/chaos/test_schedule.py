"""Chaos schedules: the pure-data timeline specs and their liveness claims."""

import pytest

from repro.chaos.schedule import ChaosSpec, ChaosStage, TriggerSpec
from repro.chaos.weather import WeatherSpec
from repro.scenarios.spec import ScenarioSpec, WeightSpec


def _plan(*stages, **kwargs):
    return ChaosSpec(stages=tuple(stages), **kwargs)


def _partition(at=0.0):
    return ChaosStage(
        action="partition",
        trigger=TriggerSpec(kind="time", value=at),
        params=(("groups", ((0, 1), (2, 3))),),
    )


def _heal(at):
    return ChaosStage(action="heal", trigger=TriggerSpec(kind="time", value=at))


class TestTriggerSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="trigger kind"):
            TriggerSpec(kind="phase-of-moon")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            TriggerSpec(kind="time", value=-1.0)

    def test_round_trips(self):
        for trigger in (
            TriggerSpec(kind="time", value=0.25),
            TriggerSpec(kind="slot", value=3, deadline=2.0),
            TriggerSpec(kind="epoch", value=1),
            TriggerSpec(kind="metric", value=100, metric="messages"),
        ):
            assert TriggerSpec.from_dict(trigger.to_dict()) == trigger


class TestChaosStage:
    def test_params_are_frozen_and_readable(self):
        stage = ChaosStage.from_dict(
            {"action": "partition", "params": {"groups": [[0, 1], [2, 3]]}}
        )
        assert stage.param("groups") == ((0, 1), (2, 3))
        assert stage.param("missing", "fallback") == "fallback"
        hash(stage)  # stays hashable after freezing

    def test_round_trips(self):
        stage = _partition(0.1)
        assert ChaosStage.from_dict(stage.to_dict()) == stage


class TestChaosSpec:
    def test_round_trips_full_plan(self):
        plan = _plan(
            _partition(0.0),
            _heal(0.3),
            weather=WeatherSpec(duplicate=0.1),
            watchdog=False,
            stall_after=2.0,
        )
        assert ChaosSpec.from_dict(plan.to_dict()) == plan

    def test_partition_window_and_heal_time(self):
        assert _plan(_partition(0.1), _heal(0.4)).partition_window() == (0.1, 0.4)
        assert _plan(_partition(0.1)).partition_window() == (0.1, None)
        assert _plan().heal_time() == 0.0
        assert _plan(_partition(0.1)).heal_time() is None
        assert _plan(_partition(0.1), _heal(0.4)).heal_time() == 0.4

    def test_keeps_liveness(self):
        assert _plan(_partition(0.0), _heal(0.3)).keeps_liveness()
        assert not _plan(_partition(0.0)).keeps_liveness()
        assert not _plan(weather=WeatherSpec(loss=0.05)).keeps_liveness()
        assert _plan(weather=WeatherSpec(duplicate=0.2, reorder=0.3)).keeps_liveness()
        storm = ChaosStage(
            action="weather",
            trigger=TriggerSpec(kind="time", value=0.2),
            params=(("weather", (("loss", 0.1),)),),
        )
        assert not _plan(storm).keeps_liveness()

    def test_latest_time_covers_polled_deadlines(self):
        plan = _plan(
            _partition(0.0),
            _heal(0.3),
            ChaosStage(
                action="crash",
                trigger=TriggerSpec(kind="slot", value=2, deadline=4.0),
            ),
        )
        assert plan.latest_time() == 4.0

    def test_stall_after_validated(self):
        with pytest.raises(ValueError, match="stall_after"):
            ChaosSpec(stall_after=0.0)


class TestScenarioSpecEmbedding:
    def _spec(self, chaos=None):
        return ScenarioSpec(
            name="probe",
            protocol="smr",
            weights=WeightSpec(kind="explicit", values=(5, 5, 5, 5)),
            chaos=chaos,
        )

    def test_chaos_key_round_trips(self):
        spec = self._spec(chaos=_plan(_partition(0.0), _heal(0.3)))
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_chaos_free_specs_keep_their_historical_encoding(self):
        # Replay specs persisted before the chaos engine existed must
        # decode (and re-encode) unchanged: no "chaos" key appears.
        encoded = self._spec().to_dict()
        assert "chaos" not in encoded
        assert ScenarioSpec.from_dict(encoded).chaos is None
