"""Bounded self-healing retry queues: a long partition under load sheds
the *oldest* parked frames instead of growing memory without bound, and
every shed frame is visible in ``retries_dropped`` and the fault trace."""

import asyncio

from repro.runtime import FaultController
from repro.runtime.codec import default_registry
from repro.runtime.transport import DEFAULT_RETRY_LIMIT, ProcMeshTransport


def _transport(faults=None):
    transport = ProcMeshTransport(default_registry(), faults=faults)
    transport.local_pid = 0
    return transport


class TestRetryBound:
    def test_default_bound_is_wired(self):
        assert _transport().retry_limit == DEFAULT_RETRY_LIMIT

    def test_drop_oldest_beyond_a_small_bound(self):
        async def scenario():
            faults = FaultController()
            transport = _transport(faults)
            transport.retry_limit = 3
            # each parked frame holds the in-flight slot send() opened
            transport.in_flight = 5
            for i in range(5):
                transport._park(1, b"frame-%d" % i)
            try:
                backlog = transport._retry[1]
                # oldest-first: the survivors are the newest frames
                assert list(backlog) == [b"frame-2", b"frame-3", b"frame-4"]
                assert transport.retries_dropped == 2
                # a dropped frame's fate is decided: its slot closes
                assert transport.in_flight == 3
                drops = [e for e in faults.trace if e[2] == "retry-dropped"]
                assert drops == [(0, 1, "retry-dropped")] * 2
            finally:
                for task in transport._retry_tasks.values():
                    task.cancel()

        asyncio.run(scenario())

    def test_backlog_within_the_bound_is_untouched(self):
        async def scenario():
            transport = _transport()
            transport.retry_limit = 3
            transport.in_flight = 3
            for i in range(3):
                transport._park(1, b"frame-%d" % i)
            try:
                assert len(transport._retry[1]) == 3
                assert transport.retries_dropped == 0
                assert transport.in_flight == 3
            finally:
                for task in transport._retry_tasks.values():
                    task.cancel()

        asyncio.run(scenario())
