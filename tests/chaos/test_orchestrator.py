"""The chaos orchestrator end to end: staged timelines on every backend,
the registry's chaos scenarios, and the liveness watchdog's postmortems."""

import json

import pytest

from repro.chaos import LivenessWatchdog, register_stage_action
from repro.chaos.orchestrator import STAGE_ACTIONS
from repro.chaos.schedule import ChaosSpec, ChaosStage, TriggerSpec
from repro.scenarios import get_scenario, run_scenario
from repro.scenarios.spec import ScenarioSpec, WeightSpec, WorkloadSpec

#: record keys that legitimately differ between backends: clocks, event
#: counts, and byte metering (the sim meters abstract payload sizes, the
#: runtimes meter encoded frames -- message *counts* still must agree)
BACKEND_KEYS = {"backend", "sim_time", "sim_events", "wall_seconds",
                "bytes", "bytes_by_type"}


def _stall_spec():
    """An unhealed chaos partition below the deliver quorum: the
    expected-no-liveness stall the watchdog must turn into a postmortem."""
    return ScenarioSpec(
        name="stall-probe",
        protocol="smr",
        weights=WeightSpec(kind="explicit", values=(30, 25, 20, 10, 5, 5, 3, 2)),
        workload=WorkloadSpec(payload_size=32, epochs=1),
        chaos=ChaosSpec(
            stages=(
                ChaosStage(
                    action="partition",
                    trigger=TriggerSpec(kind="time", value=0.0),
                    params=(("groups", ((0, 1, 2, 3), (4, 5, 6, 7))),),
                ),
            ),
        ),
    )


class TestStagedTimelineOnSim:
    def test_partition_heal_corrupt_completes(self):
        result = run_scenario(get_scenario("partition-heal-corrupt-smr"),
                              backend="sim")
        record = result.record()
        assert record["completed"]
        assert record["dropped_messages"] > 0  # the partition bit
        stages = record["chaos"]["stages"]
        assert [s["action"] for s in stages] == ["partition", "heal", "byzantine"]
        assert all(s["fired"] for s in stages)
        assert not record["chaos"]["watchdog"]["stalled"]

    def test_weather_storm_completes_without_duplicate_commits(self):
        record = run_scenario(get_scenario("weather-storm-smr"),
                              backend="sim").record()
        assert record["completed"]
        counters = record["chaos"]["weather"]["counters"]
        assert counters["duplicated"] > 0 and counters["reordered"] > 0
        assert counters["lost"] == 0
        assert record["chaos"]["duplicate_commits"] == 0

    def test_rolling_restart_under_load_commits_the_surge(self):
        record = run_scenario(get_scenario("rolling-restart-under-load"),
                              backend="sim").record()
        assert record["completed"]
        assert record["chaos"]["stages"][0]["fired"]  # the load surge
        # every observer decided the same value, surge epoch included
        assert len(set(record["decided"].values())) == 1

    def test_sim_record_is_deterministic(self):
        spec = get_scenario("partition-heal-corrupt-smr")
        a = json.dumps(run_scenario(spec, backend="sim").record(), sort_keys=True)
        b = json.dumps(run_scenario(spec, backend="sim").record(), sort_keys=True)
        assert a == b


class TestCrossBackend:
    def test_sim_and_inproc_records_agree(self):
        spec = get_scenario("partition-heal-corrupt-smr")
        sim = run_scenario(spec, backend="sim").record()
        live = run_scenario(spec, backend="inproc", timeout=30).record()
        sim_cmp = {k: v for k, v in sim.items() if k not in BACKEND_KEYS}
        live_cmp = {k: v for k, v in live.items() if k not in BACKEND_KEYS}
        assert sim_cmp == live_cmp

    @pytest.mark.proc
    def test_runs_on_proc(self):
        spec = get_scenario("partition-heal-corrupt-smr")
        sim = run_scenario(spec, backend="sim").record()
        proc = run_scenario(spec, backend="proc", timeout=60).record()
        assert proc["completed"]
        assert proc["decided"] == sim["decided"]
        stages = proc["chaos"]["stages"]
        assert all(s["fired"] for s in stages)
        assert proc["chaos"]["duplicate_commits"] == 0


class TestWatchdog:
    @pytest.mark.parametrize("backend", ["sim", "inproc"])
    def test_stall_yields_postmortem_not_timeout(self, backend):
        record = run_scenario(_stall_spec(), backend=backend,
                              timeout=20).record()
        assert not record["completed"]
        watchdog = record["chaos"]["watchdog"]
        assert watchdog["stalled"]
        assert watchdog["classification"] == "expected-no-liveness"
        postmortem = watchdog["postmortem"]
        assert postmortem["partitioned"]
        assert postmortem["dropped_messages"] > 0
        assert postmortem["trace"]  # per-link last-N message fates
        assert postmortem["stages"][0]["fired"]

    @pytest.mark.proc
    def test_stall_postmortem_on_proc(self):
        record = run_scenario(_stall_spec(), backend="proc", timeout=30).record()
        assert not record["completed"]
        watchdog = record["chaos"]["watchdog"]
        assert watchdog["stalled"]
        assert watchdog["classification"] == "expected-no-liveness"
        assert watchdog["postmortem"]["trace"]

    def test_completed_runs_carry_no_postmortem(self):
        record = run_scenario(get_scenario("partition-heal-corrupt-smr"),
                              backend="sim").record()
        assert "postmortem" not in record["chaos"]["watchdog"]

    def test_genuine_stall_classified_distinctly(self):
        # Same quiescence, opposite liveness claim: a run that was
        # expected to finish but went quiet is a bug, not an expectation.
        watchdog = LivenessWatchdog(ChaosSpec(), expect_liveness=True)
        watchdog.observe_quiescence(False)
        assert watchdog.classification == "stall"
        expected = LivenessWatchdog(ChaosSpec(), expect_liveness=False)
        expected.observe_quiescence(False)
        assert expected.classification == "expected-no-liveness"


class TestRegistryExtensibility:
    def test_custom_stage_action_fires(self):
        fired = []

        @register_stage_action("test-beacon")
        def _beacon(orch, stage):
            fired.append(stage.param("tag"))

        try:
            spec = ScenarioSpec(
                name="custom-stage",
                protocol="smr",
                weights=WeightSpec(kind="explicit", values=(5, 5, 5, 5)),
                workload=WorkloadSpec(payload_size=16, epochs=1),
                chaos=ChaosSpec(
                    stages=(
                        ChaosStage(
                            action="test-beacon",
                            trigger=TriggerSpec(kind="time", value=0.0),
                            params=(("tag", "hello"),),
                        ),
                    ),
                ),
            )
            record = run_scenario(spec, backend="sim").record()
        finally:
            STAGE_ACTIONS.pop("test-beacon", None)
        assert fired == ["hello"]
        assert record["completed"]
        assert record["chaos"]["stages"][0]["fired"]

    def test_unknown_action_rejected(self):
        spec = ScenarioSpec(
            name="bad-stage",
            protocol="smr",
            weights=WeightSpec(kind="explicit", values=(5, 5, 5, 5)),
            chaos=ChaosSpec(
                stages=(
                    ChaosStage(
                        action="no-such-action",
                        trigger=TriggerSpec(kind="time", value=0.0),
                    ),
                ),
            ),
        )
        with pytest.raises(ValueError, match="no-such-action"):
            run_scenario(spec, backend="sim")


class TestFuzzReplay:
    def test_chaos_episode_replays_byte_identically(self):
        from repro.adversary.fuzz import FuzzConfig, build_episode, run_episode

        config = FuzzConfig(episodes=0, seed=0)
        episode = next(
            build_episode(config, i)
            for i in range(200)
            if build_episode(config, i)["kind"] == "chaos"
        )
        first = run_episode(episode)
        second = run_episode(episode)
        assert not first.skipped
        assert json.dumps(first.record, sort_keys=True) == json.dumps(
            second.record, sort_keys=True
        )
        assert first.violations == []
