"""Network weather: seeded per-link loss, duplication, reorder, jitter."""

import pytest

from repro.chaos.weather import NetworkWeather, WeatherSpec


class TestWeatherSpec:
    def test_round_trips_through_dict(self):
        spec = WeatherSpec(
            loss=0.1,
            duplicate=0.2,
            reorder=0.3,
            jitter=0.05,
            links=((0, 1, 0.5, 0.0, 0.0, 0.0),),
        )
        assert WeatherSpec.from_dict(spec.to_dict()) == spec

    def test_empty_spec_serializes_to_nothing(self):
        # Conditional keys: a default spec must not bloat (or change) the
        # encoding of every historical scenario record.
        assert WeatherSpec().to_dict() == {}
        assert WeatherSpec.from_dict({}) == WeatherSpec()

    @pytest.mark.parametrize("field", ["loss", "duplicate", "reorder"])
    def test_probabilities_validated(self, field):
        with pytest.raises(ValueError):
            WeatherSpec(**{field: 1.5})

    def test_link_overrides_replace_all_knobs(self):
        spec = WeatherSpec(loss=0.5, duplicate=0.5, links=((0, 1, 1.0, 0.0, 0.0, 0.0),))
        assert spec.knobs(0, 1) == (1.0, 0.0, 0.0, 0.0)
        # the override is directed; the reverse link keeps the ambient knobs
        assert spec.knobs(1, 0) == (0.5, 0.5, 0.0, 0.0)

    def test_any_loss_sees_link_overrides(self):
        assert not WeatherSpec(duplicate=0.3).any_loss
        assert WeatherSpec(loss=0.01).any_loss
        assert WeatherSpec(links=((2, 3, 0.2, 0.0, 0.0, 0.0),)).any_loss


class TestNetworkWeather:
    def test_same_seed_same_realization(self):
        spec = WeatherSpec(loss=0.2, duplicate=0.2, reorder=0.2, jitter=0.01)
        a = NetworkWeather(spec, seed=7)
        b = NetworkWeather(spec, seed=7)
        for _ in range(200):
            assert a.on_send(0, 1) == b.on_send(0, 1)
            assert a.on_deliver(0, 1) == b.on_deliver(0, 1)
        assert a.counters() == b.counters()

    def test_different_seed_different_realization(self):
        spec = WeatherSpec(loss=0.3)

        def draws(seed):
            weather = NetworkWeather(spec, seed=seed)
            return [weather.on_send(0, 1) for _ in range(64)]

        assert draws(1) != draws(2)

    def test_links_draw_independent_streams(self):
        # Draws on one link must not perturb another link's realization:
        # the proc backend's per-worker instances only ever draw their own
        # links, and the totals must still match the single-process run.
        spec = WeatherSpec(loss=0.5, duplicate=0.5, jitter=0.01)
        solo = NetworkWeather(spec, seed=3)
        solo_draws = [
            (solo.on_send(0, 1), solo.on_deliver(0, 1)) for _ in range(50)
        ]
        interleaved = NetworkWeather(spec, seed=3)
        mixed_draws = []
        for _ in range(50):
            interleaved.on_send(2, 3)
            interleaved.on_deliver(2, 3)
            mixed_draws.append(
                (interleaved.on_send(0, 1), interleaved.on_deliver(0, 1))
            )
        assert solo_draws == mixed_draws

    def test_certain_loss_only_on_the_overridden_link(self):
        weather = NetworkWeather(
            WeatherSpec(links=((0, 1, 1.0, 0.0, 0.0, 0.0),)), seed=0
        )
        assert all(weather.on_send(0, 1) for _ in range(20))
        assert not any(weather.on_send(1, 0) for _ in range(20))
        assert weather.counters()["lost"] == 20

    def test_duplication_and_jitter_reported_in_decisions(self):
        weather = NetworkWeather(WeatherSpec(duplicate=1.0, jitter=0.02), seed=0)
        decision = weather.on_deliver(0, 1)
        assert decision.duplicates == 1
        assert 0.0 <= decision.delay <= 0.02
        counters = weather.counters()
        assert counters["duplicated"] == 1

    def test_clean_spec_never_interferes(self):
        weather = NetworkWeather(WeatherSpec(), seed=0)
        for _ in range(50):
            assert not weather.on_send(0, 1)
            decision = weather.on_deliver(0, 1)
            assert decision.duplicates == 0 and decision.delay == 0.0
